// bench_compaction — steady-state churn: mixed read/write throughput
// with and without background compaction (E16).
//
// The workload preloads a small linked CHURN graph (one bulk commit, so
// it lands as a merged CSR generation), then churns a FRESH relation in
// small batches — 64 facts, far below the L0 run threshold, so without
// compaction every batch accumulates in the node-based overlay forever.
// A warmup phase drives the churn to the shape's target volume, then
// the measured window runs writer threads (more churn batches) against
// reader threads that browse the FRESH relation on pinned snapshots.
//
// The "off" rows are the overlay-accumulating configuration the tree
// had before the background compactor: every browse walks tens of
// thousands of overlay tree nodes, and every commit deep-copies them
// all into the clone. The "on" rows run the Compactor, which folds the
// overlay into frozen CSR generations off the commit path, so browses
// stream columnar segments and clones share them by pointer.
//
// Reported per {shape, mode}: writes/sec, reads/sec, combined ops/sec,
// read and commit latency percentiles (a merge must never stall a
// pinned reader — read_max should not spike in the "on" rows), and the
// compactor's own counters.
//
//   bench_compaction [--preload 10000] [--shapes 100,400,1600]
//                    [--batch 64] [--readers 3] [--writers 2]
//                    [--duration-ms 2000] [--json FILE] [--check]
//
// --shapes counts warmup batches: churn volume = shape * batch facts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/shared_store.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Row {
  size_t preload = 0;
  size_t warmup_batches = 0;
  size_t batch = 0;
  size_t churn_start = 0;  // FRESH facts when the window opens
  bool compaction = false;
  double duration_s = 0;
  uint64_t writes = 0;  // committed batches
  uint64_t facts = 0;   // facts asserted by those batches
  uint64_t reads = 0;   // FRESH browses
  double writes_per_sec = 0;
  double reads_per_sec = 0;
  double ops_per_sec = 0;  // browses + batch commits
  double write_p50_ms = 0, write_p99_ms = 0, write_max_ms = 0;
  double read_p50_ms = 0, read_p99_ms = 0, read_max_ms = 0;
  uint64_t merges = 0;
  uint64_t merge_aborts = 0;
  uint64_t bytes_merged = 0;
  uint64_t backpressure_hits = 0;
  double last_merge_ms = 0;
  size_t end_runs = 0;
  size_t end_overlay_bytes = 0;
  size_t end_frozen_bytes = 0;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  size_t k = static_cast<size_t>(p * (v.size() - 1));
  std::nth_element(v.begin(), v.begin() + k, v.end());
  return v[k];
}

std::string ChurnName(size_t i) { return "CHURN-" + std::to_string(i); }

// One churn run at a fixed shape. Entities beyond the preload are minted
// by the churn batches themselves; each batch links fresh sources back
// into the preloaded graph, so browses read real data.
Row RunShape(size_t preload, size_t warmup_batches, size_t batch,
             int readers, int writers, int duration_ms, bool compaction) {
  Row row;
  row.preload = preload;
  row.warmup_batches = warmup_batches;
  row.batch = batch;
  row.compaction = compaction;

  lsd::SharedStore store;
  auto seeded = store.Commit([&](lsd::LooseDb& db) {
    for (size_t i = 0; i < preload; ++i) {
      db.Assert(ChurnName(i), "LINKS", ChurnName((i * 7 + 1) % preload));
    }
    return lsd::Status::OK();
  });
  if (!seeded.ok()) {
    std::fprintf(stderr, "preload failed: %s\n",
                 seeded.status().ToString().c_str());
    std::exit(1);
  }
  if (compaction) {
    lsd::CompactionOptions options;
    // Merge whenever the overlay tops 128 KiB: frequent enough that the
    // measured window reads mostly CSR, coarse enough that the merge
    // thread is not spinning on every commit.
    options.overlay_ratio = 0.0;
    options.min_overlay_bytes = 128 * 1024;
    options.poll_ms = 5;
    lsd::Status enabled = store.EnableCompaction(options);
    if (!enabled.ok()) {
      std::fprintf(stderr, "EnableCompaction failed: %s\n",
                   enabled.ToString().c_str());
      std::exit(1);
    }
  }

  std::atomic<size_t> next_entity{preload};
  auto commit_batch = [&]() -> double {
    const size_t base = next_entity.fetch_add(batch);
    auto t0 = Clock::now();
    auto committed = store.Commit([&](lsd::LooseDb& db) {
      for (size_t i = 0; i < batch; ++i) {
        db.Assert(ChurnName(base + i), "FRESH",
                  ChurnName((base + i) % preload));
      }
      return lsd::Status::OK();
    });
    if (!committed.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   committed.status().ToString().c_str());
      std::exit(1);
    }
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  };

  // Warmup: drive the churn to the shape's volume. Without compaction
  // this is exactly the overlay the measured window inherits.
  for (size_t i = 0; i < warmup_batches; ++i) commit_batch();
  row.churn_start = next_entity.load() - preload;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::vector<double>> write_lat(writers);
  std::vector<std::vector<double>> read_lat(readers);
  std::vector<std::thread> threads;

  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      while (!stop.load(std::memory_order_relaxed)) {
        write_lat[w].push_back(commit_batch());
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Browse the churned relation on a pinned snapshot: stream
        // every FRESH fact. This is the read the paper's browser makes
        // when it fans out from a relation, and it is exactly where
        // merged CSR generations beat an ever-growing node overlay.
        lsd::EpochPtr pinned = store.snapshot();
        auto t0 = Clock::now();
        auto view = pinned->db().View();
        if (!view.ok()) {
          ++read_errors;
          continue;
        }
        auto fresh = pinned->db().entities().Lookup("FRESH");
        size_t seen = 0;
        (*view)->ForEach(
            lsd::Pattern(lsd::kAnyEntity, *fresh, lsd::kAnyEntity),
            [&](const lsd::Fact&) {
              ++seen;
              return true;
            });
        double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        if (seen == 0) {
          ++read_errors;
        } else {
          read_lat[r].push_back(ms);
        }
      }
    });
  }

  auto t0 = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  row.duration_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  if (read_errors.load() != 0) {
    std::fprintf(stderr, "%llu read errors\n",
                 static_cast<unsigned long long>(read_errors.load()));
    std::exit(1);
  }

  std::vector<double> wl, rl;
  for (auto& v : write_lat) wl.insert(wl.end(), v.begin(), v.end());
  for (auto& v : read_lat) rl.insert(rl.end(), v.begin(), v.end());
  row.writes = wl.size();
  row.facts = static_cast<uint64_t>(wl.size()) * batch;
  row.reads = rl.size();
  row.writes_per_sec = row.writes / row.duration_s;
  row.reads_per_sec = row.reads / row.duration_s;
  row.ops_per_sec = (row.writes + row.reads) / row.duration_s;
  row.write_max_ms = wl.empty() ? 0 : *std::max_element(wl.begin(), wl.end());
  row.read_max_ms = rl.empty() ? 0 : *std::max_element(rl.begin(), rl.end());
  row.write_p50_ms = Percentile(wl, 0.5);
  row.write_p99_ms = Percentile(wl, 0.99);
  row.read_p50_ms = Percentile(rl, 0.5);
  row.read_p99_ms = Percentile(rl, 0.99);

  const lsd::CompactionStats cs = store.compaction_stats();
  row.merges = cs.merges;
  row.merge_aborts = cs.aborted;
  row.bytes_merged = cs.bytes_merged;
  row.backpressure_hits = cs.backpressure_hits;
  row.last_merge_ms = static_cast<double>(cs.last_merge_ms);
  const lsd::CompactionShape shape = store.SampleShape();
  row.end_runs = shape.runs;
  row.end_overlay_bytes = shape.overlay_bytes;
  row.end_frozen_bytes = shape.frozen_bytes;
  store.StopCompaction();
  return row;
}

void WriteJson(std::FILE* out, const std::vector<Row>& rows) {
  std::fprintf(out,
               "{\n  \"comment\": \"bench_compaction churn sweep (E16): "
               "mixed read/write throughput with and without background "
               "compaction; regenerate with tools/bench_json.sh\",\n");
#ifdef NDEBUG
  std::fprintf(out, "  \"library_build_type\": \"release\",\n");
#else
  std::fprintf(out, "  \"library_build_type\": \"debug\",\n");
#endif
  std::fprintf(out, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"preload\": %zu, \"warmup_batches\": %zu, \"batch\": %zu, "
        "\"churn_start\": %zu, \"compaction\": %s,\n"
        "     \"duration_s\": %.3f, \"writes\": %llu, \"facts\": %llu, "
        "\"reads\": %llu,\n"
        "     \"writes_per_sec\": %.1f, \"reads_per_sec\": %.1f, "
        "\"ops_per_sec\": %.1f,\n"
        "     \"write_p50_ms\": %.3f, \"write_p99_ms\": %.3f, "
        "\"write_max_ms\": %.3f,\n"
        "     \"read_p50_ms\": %.3f, \"read_p99_ms\": %.3f, "
        "\"read_max_ms\": %.3f,\n"
        "     \"merges\": %llu, \"merge_aborts\": %llu, "
        "\"bytes_merged\": %llu, \"backpressure_hits\": %llu, "
        "\"last_merge_ms\": %.1f,\n"
        "     \"end_runs\": %zu, \"end_overlay_bytes\": %zu, "
        "\"end_frozen_bytes\": %zu}%s\n",
        r.preload, r.warmup_batches, r.batch, r.churn_start,
        r.compaction ? "true" : "false", r.duration_s,
        static_cast<unsigned long long>(r.writes),
        static_cast<unsigned long long>(r.facts),
        static_cast<unsigned long long>(r.reads), r.writes_per_sec,
        r.reads_per_sec, r.ops_per_sec, r.write_p50_ms, r.write_p99_ms,
        r.write_max_ms, r.read_p50_ms, r.read_p99_ms, r.read_max_ms,
        static_cast<unsigned long long>(r.merges),
        static_cast<unsigned long long>(r.merge_aborts),
        static_cast<unsigned long long>(r.bytes_merged),
        static_cast<unsigned long long>(r.backpressure_hits),
        r.last_merge_ms, r.end_runs, r.end_overlay_bytes,
        r.end_frozen_bytes, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t preload = 10000;
  std::vector<size_t> shapes = {100, 400, 1600};
  size_t batch = 64;
  int readers = 3;
  int writers = 2;
  int duration_ms = 2000;
  std::string json_path;
  bool check = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--preload" && i + 1 < argc) {
      preload = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--shapes" && i + 1 < argc) {
      shapes.clear();
      std::string list = argv[++i];
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        shapes.push_back(static_cast<size_t>(
            std::atoll(list.substr(pos, comma - pos).c_str())));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--readers" && i + 1 < argc) {
      readers = std::atoi(argv[++i]);
    } else if (arg == "--writers" && i + 1 < argc) {
      writers = std::atoi(argv[++i]);
    } else if (arg == "--duration-ms" && i + 1 < argc) {
      duration_ms = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--preload N] [--shapes 100,400,1600] "
                   "[--batch N] [--readers N] [--writers N] "
                   "[--duration-ms N] [--json FILE] [--check]\n",
                   argv[0]);
      return 2;
    }
  }
  if (check) {
    // Smoke configuration: small and fast, still both modes end to end
    // with enough warmup churn to trip the 128 KiB merge trigger.
    preload = 2000;
    shapes = {60};
    duration_ms = 400;
  }

  std::vector<Row> rows;
  for (size_t shape : shapes) {
    for (bool compaction : {false, true}) {
      Row row = RunShape(preload, shape, batch, readers, writers,
                         duration_ms, compaction);
      std::fprintf(stderr,
                   "shape=%zu (churn %zu) compaction=%s: %.0f ops/s "
                   "(%.0f browses/s, %.0f commits/s), read p99 %.2f ms "
                   "max %.2f ms, %llu merges\n",
                   shape, row.churn_start, compaction ? "on" : "off",
                   row.ops_per_sec, row.reads_per_sec, row.writes_per_sec,
                   row.read_p99_ms, row.read_max_ms,
                   static_cast<unsigned long long>(row.merges));
      rows.push_back(row);
    }
  }

  if (check) {
    size_t errors = 0;
    for (const Row& r : rows) {
      if (r.reads == 0 || r.writes == 0) {
        std::fprintf(stderr,
                     "--check failed: empty row (shape=%zu compaction=%d)\n",
                     r.warmup_batches, (int)r.compaction);
        ++errors;
      }
      if (r.compaction && r.merges == 0) {
        std::fprintf(stderr, "--check failed: compactor never merged\n");
        ++errors;
      }
      if (!r.compaction && r.merges != 0) {
        std::fprintf(stderr,
                     "--check failed: merges counted with compaction off\n");
        ++errors;
      }
    }
    if (errors != 0) return 1;
    std::fprintf(stderr, "--check passed: %zu rows\n", rows.size());
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    WriteJson(out, rows);
    std::fclose(out);
  } else {
    WriteJson(stdout, rows);
  }
  return 0;
}
