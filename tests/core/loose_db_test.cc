#include "core/loose_db.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(LooseDbTest, AssertRetractRoundTrip) {
  LooseDb db;
  Fact f = db.Assert("A", "R", "B");
  EXPECT_TRUE(db.store().Contains(f));
  EXPECT_TRUE(db.Retract(f));
  EXPECT_FALSE(db.store().Contains(f));
  EXPECT_FALSE(db.Retract(f));
  EXPECT_TRUE(db.Retract("A", "R", "B").IsNotFound());
  EXPECT_TRUE(db.Retract("NO", "SUCH", "NAMES").IsNotFound());
}

TEST(LooseDbTest, StandardRulesInstalledByDefault) {
  LooseDb db;
  EXPECT_FALSE(db.rules().empty());
  EXPECT_TRUE(db.IsRuleEnabled("gen-source"));
  EXPECT_TRUE(db.IsRuleEnabled("inversion"));
}

TEST(LooseDbTest, BareDbHasNoRules) {
  LooseDbOptions options;
  options.standard_rules = false;
  LooseDb db(options);
  EXPECT_TRUE(db.rules().empty());
  db.Assert("JOHN", "IN", "EMPLOYEE");
  db.Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  auto r = db.Query("(JOHN, WORKS-FOR, DEPARTMENT)");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->truth);  // no inference without rules
}

TEST(LooseDbTest, ClosureIsCachedUntilMutation) {
  LooseDb db;
  db.Assert("A", "ISA", "B");
  auto v1 = db.View();
  ASSERT_TRUE(v1.ok());
  auto v2 = db.View();
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v1, *v2);  // same cached pointer
  db.Assert("B", "ISA", "C");
  auto v3 = db.View();
  ASSERT_TRUE(v3.ok());
  EXPECT_TRUE((*v3)->Contains(
      Fact(*db.entities().Lookup("A"), kEntIsa,
           *db.entities().Lookup("C"))));
}

TEST(LooseDbTest, ClosureStatsAvailableAfterView) {
  LooseDb db;
  EXPECT_EQ(db.closure_stats(), nullptr);
  db.Assert("A", "ISA", "B");
  ASSERT_TRUE(db.View().ok());
  ASSERT_NE(db.closure_stats(), nullptr);
  EXPECT_GE(db.closure_stats()->rounds, 1u);
}

TEST(LooseDbTest, DefineRuleAndQuery) {
  LooseDb db;
  ASSERT_TRUE(
      db.DefineRule("pay: (?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)")
          .ok());
  db.Assert("JOHN", "IN", "EMPLOYEE");
  auto r = db.Query("(JOHN, EARNS, SALARY)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truth);
  // Duplicate names rejected.
  EXPECT_EQ(db.DefineRule("pay: (?X, IN, A) => (?X, IN, B)").code(),
            StatusCode::kAlreadyExists);
}

TEST(LooseDbTest, IntegrityFacade) {
  LooseDb db;
  db.Assert("JOHN", "LOVES", "MARY");
  EXPECT_TRUE(db.CheckIntegrity().ok());
  db.Assert("JOHN", "HATES", "MARY");
  db.Assert("LOVES", "CONTRA", "HATES");
  EXPECT_TRUE(db.CheckIntegrity().IsIntegrityViolation());
  auto violations = db.FindIntegrityViolations();
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations->size(), 1u);
}

TEST(LooseDbTest, LoadTextInstallsFactsAndRules) {
  LooseDb db;
  Status s = db.LoadText(
      "(JOHN, IN, EMPLOYEE)\n"
      "rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto r = db.Query("(JOHN, EARNS, SALARY)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truth);
}

class LooseDbPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lsd_db_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    prefix_ = (dir_ / "db").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string prefix_;
};

TEST_F(LooseDbPersistenceTest, SaveOpenRoundTrip) {
  {
    LooseDb db;
    db.Assert("JOHN", "WORKS-FOR", "SHIPPING");
    ASSERT_TRUE(
        db.DefineRule("pay: (?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)")
            .ok());
    ASSERT_TRUE(db.Save(prefix_).ok());
    // Mutations after Save land in the WAL.
    db.Assert("JOHN", "IN", "EMPLOYEE");
  }
  LooseDb restored;
  Status s = restored.Open(prefix_);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto r = restored.Query("(JOHN, EARNS, SALARY)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truth);  // needs the snapshot rule + the WAL fact
  auto r2 = restored.Query("(JOHN, WORKS-FOR, SHIPPING)");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->truth);
}

TEST_F(LooseDbPersistenceTest, OpenWithoutFilesStartsEmptyAndLogs) {
  {
    LooseDb db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    db.Assert("A", "R", "B");
  }
  LooseDb again;
  ASSERT_TRUE(again.Open(prefix_).ok());
  auto r = again.Query("(A, R, B)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truth);
}

TEST_F(LooseDbPersistenceTest, RetractionsSurviveRestart) {
  {
    LooseDb db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    Fact f = db.Assert("A", "R", "B");
    db.Assert("C", "R", "D");
    db.Retract(f);
  }
  LooseDb again;
  ASSERT_TRUE(again.Open(prefix_).ok());
  EXPECT_FALSE(again.Query("(A, R, B)")->truth);
  EXPECT_TRUE(again.Query("(C, R, D)")->truth);
}

TEST(LooseDbMemoryTest, ReportsPerTierBytes) {
  LooseDb db;
  db.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  db.Assert("SHIPPING", "IN", "DEPARTMENT");
  db.Assert("JOHN", "IN", "EMPLOYEE");
  auto mem = db.MemoryUsage();
  ASSERT_TRUE(mem.ok());
  // The frozen base tier holds the asserted snapshot: columns,
  // permutations, and offset tables are all live.
  EXPECT_GT(mem->base.frozen.run_bytes, 0u);
  EXPECT_GT(mem->base.frozen.perm_bytes, 0u);
  EXPECT_GT(mem->base.frozen.offset_bytes, 0u);
  // The standard rules derive facts, so the derived tier is non-empty.
  EXPECT_GT(mem->derived.total(), 0u);
  EXPECT_EQ(mem->total(), mem->base.total() + mem->derived.total());
  // Columnar CSR beats three sorted Fact arrays on the same fact set.
  EXPECT_LT(mem->base.total(),
            3 * sizeof(Fact) * db.store().size() + 4096);
}

TEST_F(LooseDbPersistenceTest, RuleTogglesSurviveRestart) {
  {
    LooseDb db;
    ASSERT_TRUE(db.Open(prefix_).ok());
    db.Assert("JOHN", "IN", "EMPLOYEE");
    db.Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
    ASSERT_TRUE(db.SetRuleEnabled("mem-source", false).ok());
  }
  LooseDb again;
  ASSERT_TRUE(again.Open(prefix_).ok());
  EXPECT_FALSE(again.IsRuleEnabled("mem-source"));
  EXPECT_FALSE(again.Query("(JOHN, WORKS-FOR, DEPARTMENT)")->truth);
}

}  // namespace
}  // namespace lsd
