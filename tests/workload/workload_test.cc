#include <gtest/gtest.h>

#include "workload/music_domain.h"
#include "workload/org_domain.h"
#include "workload/random_graph.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

TEST(MusicDomainTest, BuildsCleanDatabase) {
  LooseDb db;
  workload::BuildMusicDomain(&db);
  EXPECT_GT(db.store().size(), 20u);
  EXPECT_TRUE(db.CheckIntegrity().ok());
}

TEST(CampusDomainTest, PaperProbePreconditions) {
  LooseDb db;
  workload::BuildCampusDomain(&db);
  // The original query must fail...
  EXPECT_FALSE(
      db.Query("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)")->Success());
  // ...while its two paper retractions succeed.
  EXPECT_TRUE(
      db.Query("(FRESHMAN, LOVE, ?Z) and (?Z, COSTS, FREE)")->Success());
  EXPECT_TRUE(
      db.Query("(STUDENT, LOVE, ?Z) and (?Z, COSTS, CHEAP)")->Success());
  // ...and the other two fail.
  EXPECT_FALSE(
      db.Query("(STUDENT, LIKE, ?Z) and (?Z, COSTS, FREE)")->Success());
  EXPECT_FALSE(
      db.Query("(STUDENT, LOVE, ?Z) and (?Z, ANY, FREE)")->Success());
}

TEST(BooksDomainTest, ExactlyOneSelfCitingAuthor) {
  LooseDb db;
  workload::BuildBooksDomain(&db);
  auto r = db.Query("(?X, CITES, ?X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(OrgDomainTest, ScalesWithOptions) {
  LooseDb db;
  workload::OrgOptions options;
  options.num_employees = 10;
  options.num_departments = 2;
  auto domain = workload::BuildOrgDomain(&db, options);
  EXPECT_EQ(domain.records.size(), 12u);  // 10 + 2 managers
  EXPECT_EQ(domain.departments.size(), 2u);
  EXPECT_TRUE(db.CheckIntegrity().ok());
}

TEST(OrgDomainTest, ViolationIsPlantedWhenRequested) {
  LooseDb db;
  workload::OrgOptions options;
  options.num_employees = 10;
  options.violate_salaries = true;
  workload::BuildOrgDomain(&db, options);
  EXPECT_TRUE(db.CheckIntegrity().IsIntegrityViolation());
}

TEST(OrgDomainTest, RelationalMirrorsLooseStore) {
  LooseDb db;
  workload::OrgOptions options;
  options.num_employees = 10;
  auto domain = workload::BuildOrgDomain(&db, options);
  baseline::Catalog catalog;
  workload::BuildOrgRelational(domain, options, &db.entities(), &catalog);
  auto emp = catalog.Get("EMP");
  ASSERT_TRUE(emp.ok());
  EXPECT_EQ((*emp)->size(), domain.records.size());
  // Point query agrees between engines: EMP-0's department.
  EntityId name = *db.entities().Lookup("EMP-0");
  auto rows = baseline::Select(**emp, "NAME", name, {"DEPT"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  std::string dept = db.entities().Name((*rows)[0][0]);
  auto loose = db.Query("(EMP-0, WORKS-FOR, ?D)");
  ASSERT_TRUE(loose.ok());
  bool found = false;
  for (const auto& row : loose->rows) {
    if (db.entities().Name(row[0]) == dept) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RandomTaxonomyTest, ShapeMatchesParameters) {
  LooseDb db;
  workload::TaxonomyOptions options;
  options.depth = 3;
  options.fanout = 2;
  options.num_roots = 2;
  auto tax = workload::BuildRandomTaxonomy(&db, options);
  ASSERT_EQ(tax.levels.size(), 4u);
  EXPECT_EQ(tax.levels[0].size(), 2u);
  EXPECT_EQ(tax.levels[3].size(), 16u);
  EXPECT_EQ(tax.NumNodes(), 2u + 4 + 8 + 16);
  // Leaf ISA root holds in the closure (transitivity).
  auto r = db.Query("(" + tax.levels[3][0] + ", ISA, " + tax.Root() + ")");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truth);
}

TEST(ZipfGraphTest, DeterministicAndSkewed) {
  FactStore a, b;
  workload::GraphOptions options;
  options.num_facts = 2000;
  options.num_entities = 100;
  std::string hub_a = workload::BuildZipfGraph(&a, options);
  std::string hub_b = workload::BuildZipfGraph(&b, options);
  EXPECT_EQ(hub_a, hub_b);
  EXPECT_EQ(a.size(), b.size());
  // The hub has far higher degree than the uniform average (20 facts
  // per entity as source).
  EntityId hub = *a.entities().Lookup(hub_a);
  size_t hub_degree =
      a.base().CountMatches(Pattern(hub, kAnyEntity, kAnyEntity));
  EXPECT_GT(hub_degree, 100u);
}

}  // namespace
}  // namespace lsd
