#include "browse/proximity.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/music_domain.h"

namespace lsd {
namespace {

class ProximityTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildMusicDomain(&db_); }

  LooseDb db_;
};

TEST_F(ProximityTest, DirectAssociationIsDistanceOne) {
  auto d = db_.SemanticDistance("JOHN", "FELIX");
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->has_value());
  EXPECT_EQ(**d, 1);
}

TEST_F(ProximityTest, SelfDistanceIsZero) {
  auto d = db_.SemanticDistance("JOHN", "JOHN");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(**d, 0);
}

TEST_F(ProximityTest, CompositionPathGivesDistanceTwo) {
  // LEOPOLD -> MOZART (direct), MOZART <- PC#9-WAM <- JOHN: Leopold to
  // Serkin goes LEOPOLD-MOZART-PC#9-WAM-SERKIN = 3 undirected hops.
  auto d = db_.SemanticDistance("LEOPOLD", "SERKIN");
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->has_value());
  EXPECT_EQ(**d, 3);
}

TEST_F(ProximityTest, RadiusBoundsSearch) {
  auto d = db_.SemanticDistance("LEOPOLD", "SERKIN", 2);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->has_value());  // needs 3 hops
}

TEST_F(ProximityTest, UnconnectedEntities) {
  db_.Assert("HERMIT", "LIVES-IN", "CAVE");
  auto d = db_.SemanticDistance("JOHN", "HERMIT", 6);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->has_value());
}

TEST_F(ProximityTest, MetaEdgesDoNotCount) {
  // Membership/generalization links are not associations. (Isolated db:
  // in the music domain, inference materializes class-level facts like
  // (FELIX, LIKES, EMPLOYEE) that create genuine associations.)
  LooseDb db;
  db.Assert("A", "IN", "B");
  db.Assert("B", "ISA", "C");
  auto d = db.SemanticDistance("A", "C", 4);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->has_value());
  ProximityOptions options;
  options.include_meta_relationships = true;
  auto view = db.View();
  ASSERT_TRUE(view.ok());
  auto d2 = SemanticDistance(**view, *db.entities().Lookup("A"),
                             *db.entities().Lookup("C"), 4, options);
  ASSERT_TRUE(d2.ok());
  // Distance 1, not 2: the closure already contains (A, IN, C) by the
  // membership-up rule.
  EXPECT_EQ(**d2, 1);
}

TEST_F(ProximityTest, NearbyReturnsLayeredNeighbors) {
  auto nearby = db_.Nearby("LEOPOLD", 2);
  ASSERT_TRUE(nearby.ok());
  ASSERT_FALSE(nearby->empty());
  // First layer contains Mozart; second layer his works/admirers.
  bool mozart_at_1 = false, pc9_at_2 = false;
  int last = 0;
  for (const NearbyEntity& n : *nearby) {
    EXPECT_GE(n.distance, last);  // BFS order: closest first
    last = n.distance;
    const std::string& name = db_.entities().Name(n.entity);
    if (name == "MOZART") mozart_at_1 = (n.distance == 1);
    if (name == "PC#9-WAM") pc9_at_2 = (n.distance == 2);
  }
  EXPECT_TRUE(mozart_at_1);
  EXPECT_TRUE(pc9_at_2);
}

TEST_F(ProximityTest, DirectedSearchMissesIncomingEdges) {
  ProximityOptions options;
  options.undirected = false;
  auto view = db_.View();
  ASSERT_TRUE(view.ok());
  EntityId mozart = *db_.entities().Lookup("MOZART");
  EntityId leopold = *db_.entities().Lookup("LEOPOLD");
  // Outgoing only: MOZART has no outgoing association facts at all.
  auto d = SemanticDistance(**view, mozart, leopold, 4, options);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->has_value());
  // The other direction works: LEOPOLD FATHER-OF MOZART.
  auto d2 = SemanticDistance(**view, leopold, mozart, 4, options);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(**d2, 1);
}

TEST_F(ProximityTest, UnknownEntityIsNotFound) {
  EXPECT_TRUE(db_.Nearby("NOBODY", 2).status().IsNotFound());
  EXPECT_TRUE(db_.SemanticDistance("JOHN", "NOBODY").status().IsNotFound());
}

}  // namespace
}  // namespace lsd
