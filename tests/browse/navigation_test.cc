// Reproduces the Sec 4.1 navigation session (F1-F3 in DESIGN.md).
#include "browse/navigation.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/music_domain.h"

namespace lsd {
namespace {

class NavigationTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildMusicDomain(&db_); }

  std::set<std::string> Names(const std::vector<EntityId>& ids) {
    std::set<std::string> out;
    for (EntityId e : ids) out.insert(db_.entities().Name(e));
    return out;
  }

  const NeighborhoodView::RelationGroup* FindGroup(
      const NeighborhoodView& view, const std::string& rel) {
    for (const auto& g : view.outgoing) {
      if (db_.entities().Name(g.relationship) == rel) return &g;
    }
    return nullptr;
  }

  LooseDb db_;
};

// F1: the (JOHN, *, *) table.
TEST_F(NavigationTest, JohnsNeighborhood) {
  auto view = db_.Navigate("JOHN");
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // First column "JOHN**": PERSON (inferred), EMPLOYEE, PET-OWNER,
  // MUSIC-LOVER.
  EXPECT_EQ(Names(view->classes),
            (std::set<std::string>{"PERSON", "EMPLOYEE", "PET-OWNER",
                                   "MUSIC-LOVER"}));

  const auto* likes = FindGroup(*view, "LIKES");
  ASSERT_NE(likes, nullptr);
  EXPECT_EQ(Names(likes->entities),
            (std::set<std::string>{"CAT", "FELIX", "HEATHCLIFF", "MOZART",
                                   "MARY"}));

  // WORKS-FOR shows both the asserted SHIPPING and the inferred
  // DEPARTMENT (Sec 3.2).
  const auto* works = FindGroup(*view, "WORKS-FOR");
  ASSERT_NE(works, nullptr);
  EXPECT_EQ(Names(works->entities),
            (std::set<std::string>{"SHIPPING", "DEPARTMENT"}));

  // The paper's table lists the three concrete works; the closure also
  // legitimately contains their classes (rule 2b lifts PC#9-WAM to
  // CONCERTO, then rule 1c to CLASSICAL-COMPOSITION and COMPOSITION).
  const auto* fav = FindGroup(*view, "FAVORITE-MUSIC");
  ASSERT_NE(fav, nullptr);
  std::set<std::string> fav_names = Names(fav->entities);
  EXPECT_TRUE(fav_names.count("PC#9-WAM"));
  EXPECT_TRUE(fav_names.count("PC#2-PIT"));
  EXPECT_TRUE(fav_names.count("S#5-LVB"));
  EXPECT_TRUE(fav_names.count("CONCERTO"));  // inferred, Sec 3.2

  const auto* boss = FindGroup(*view, "BOSS");
  ASSERT_NE(boss, nullptr);
  EXPECT_EQ(Names(boss->entities), (std::set<std::string>{"PETER"}));
}

// F2: the (PC#9-WAM, *, *) table, including the inverse-inferred
// FAVORITE-OF column.
TEST_F(NavigationTest, ConcertoNeighborhood) {
  auto view = db_.Navigate("PC#9-WAM");
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  EXPECT_TRUE(Names(view->classes).count("CONCERTO"));
  EXPECT_TRUE(Names(view->classes).count("CLASSICAL-COMPOSITION"));
  EXPECT_TRUE(Names(view->classes).count("COMPOSITION"));

  const auto* composed = FindGroup(*view, "COMPOSED-BY");
  ASSERT_NE(composed, nullptr);
  EXPECT_EQ(Names(composed->entities), (std::set<std::string>{"MOZART"}));

  const auto* performed = FindGroup(*view, "PERFORMED-BY");
  ASSERT_NE(performed, nullptr);
  EXPECT_EQ(Names(performed->entities),
            (std::set<std::string>{"SERKIN", "BARENBOIM"}));

  // FAVORITE-OF: JOHN — inferred via (FAVORITE-MUSIC, INV, FAVORITE-OF).
  // John's classes also appear: rule 2b lifts JOHN to EMPLOYEE etc.
  const auto* fav_of = FindGroup(*view, "FAVORITE-OF");
  ASSERT_NE(fav_of, nullptr);
  EXPECT_TRUE(Names(fav_of->entities).count("JOHN"));
}

TEST_F(NavigationTest, RenderedTableShowsHeaderAndEntities) {
  auto view = db_.Navigate("JOHN");
  ASSERT_TRUE(view.ok());
  std::string table = view->Render(db_.entities());
  EXPECT_NE(table.find("JOHN **"), std::string::npos);
  EXPECT_NE(table.find("LIKES"), std::string::npos);
  EXPECT_NE(table.find("FELIX"), std::string::npos);
  EXPECT_NE(table.find("PERSON"), std::string::npos);
}

// F3: (LEOPOLD, *, MOZART) — all associations, direct and composed.
TEST_F(NavigationTest, LeopoldMozartAssociations) {
  auto assocs = db_.Associations("LEOPOLD", "MOZART");
  ASSERT_TRUE(assocs.ok()) << assocs.status().ToString();
  std::set<std::string> names;
  for (const Association& a : *assocs) {
    names.insert(db_.entities().Name(a.relationship));
  }
  EXPECT_TRUE(names.count("FATHER-OF"));
  EXPECT_TRUE(names.count("TAUGHT"));
}

// The composed association the paper highlights: John relates to Mozart
// through his favorite concerto.
TEST_F(NavigationTest, JohnMozartComposedPath) {
  auto assocs = db_.Associations("JOHN", "MOZART");
  ASSERT_TRUE(assocs.ok()) << assocs.status().ToString();
  std::set<std::string> names;
  for (const Association& a : *assocs) {
    names.insert(db_.entities().Name(a.relationship));
  }
  EXPECT_TRUE(names.count("LIKES"));  // direct
  EXPECT_TRUE(names.count("FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY"))
      << "composed path missing";
}

TEST_F(NavigationTest, AssociationsRespectCompositionLimit) {
  db_.SetCompositionLimit(1);  // Sec 6.1: limit(1) disables composition
  auto assocs = db_.Associations("JOHN", "MOZART");
  ASSERT_TRUE(assocs.ok());
  for (const Association& a : *assocs) {
    EXPECT_EQ(a.chain.size(), 1u);  // only direct facts remain
  }
}

TEST_F(NavigationTest, RenderAssociationsTable) {
  auto table = db_.RenderAssociations("LEOPOLD", "MOZART");
  ASSERT_TRUE(table.ok());
  EXPECT_NE(table->find("LEOPOLD * MOZART"), std::string::npos);
  EXPECT_NE(table->find("FATHER-OF"), std::string::npos);
}

TEST_F(NavigationTest, UnknownEntityIsNotFound) {
  auto view = db_.Navigate("NOBODY");
  EXPECT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsNotFound());
}

TEST_F(NavigationTest, IncomingGroupsAppear) {
  auto view = db_.Navigate("MOZART");
  ASSERT_TRUE(view.ok());
  bool found_composed_by = false;
  for (const auto& g : view->incoming) {
    if (db_.entities().Name(g.relationship) == "COMPOSED-BY") {
      found_composed_by = true;
      EXPECT_EQ(Names(g.entities), (std::set<std::string>{"PC#9-WAM"}));
    }
  }
  EXPECT_TRUE(found_composed_by);
}

}  // namespace
}  // namespace lsd
