// Property test for the paper's central probing theorem (Sec 5.1):
// if Q' is minimally broader than Q then Q => Q' — every answer of Q is
// an answer of Q', so when Q succeeds all its retraction queries
// succeed, and their answer sets contain Q's.
#include <set>

#include <gtest/gtest.h>

#include "browse/probing.h"
#include "core/loose_db.h"
#include "workload/music_domain.h"
#include "workload/org_domain.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

class BroadnessPropertyTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    workload::BuildCampusDomain(&db_);
    workload::BuildMusicDomain(&db_);
    workload::BuildBooksDomain(&db_);
  }

  using Rows = std::set<std::vector<EntityId>>;

  StatusOr<Rows> Evaluate(const Query& q) {
    auto r = db_.Run(q);
    if (!r.ok()) return r.status();
    Rows rows(r->rows.begin(), r->rows.end());
    if (r->is_proposition && r->truth) {
      rows.insert(std::vector<EntityId>{});
    }
    return rows;
  }

  LooseDb db_;
};

TEST_P(BroadnessPropertyTest, RetractionsContainOriginalAnswers) {
  auto query = db_.Parse(GetParam());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto original = Evaluate(*query);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_FALSE(original->empty())
      << "seed query must succeed for the property to bite: "
      << GetParam();

  auto view = db_.View();
  ASSERT_TRUE(view.ok());
  GeneralizationLattice lattice = GeneralizationLattice::Build(**view);
  Prober prober(*view, &lattice, &db_.entities());

  std::vector<VarId> original_free = query->FreeVars();
  int checked = 0;
  for (auto& [broader, sub] : prober.RetractionSet(*query)) {
    // Template deletion can drop free variables; the containment
    // property is only well-typed when the answer schema is unchanged.
    if (broader.FreeVars() != original_free) continue;
    auto rows = Evaluate(broader);
    if (!rows.ok()) continue;  // a variant may be unsafe; that's fine
    ++checked;
    for (const auto& row : *original) {
      EXPECT_TRUE(rows->count(row))
          << "broader query lost an answer.\n  original: "
          << query->DebugString(db_.entities())
          << "\n  broader:  " << broader.DebugString(db_.entities())
          << "\n  via " << sub.Describe(db_.entities());
    }
  }
  EXPECT_GT(checked, 0) << "no retraction queries were checkable";
}

INSTANTIATE_TEST_SUITE_P(
    SeedQueries, BroadnessPropertyTest,
    ::testing::Values(
        "(FRESHMAN, LOVE, ?Z)",
        "(FRESHMAN, LOVE, ?Z) and (?Z, COSTS, FREE)",
        "(STUDENT, LOVE, ?Z) and (?Z, COSTS, CHEAP)",
        "(JOHN, LIKES, ?X)",
        "(JOHN, WORKS-FOR, SHIPPING)",
        "(?Z, IN, QUARTERBACK) and (?Z, ATTENDED, USC)",
        "(PC#9-WAM, COMPOSED-BY, MOZART)",
        "(?B, CITES, ?B)",
        "exists ?C ((?S, ENROLLED-IN, ?C) and (?C, TAUGHT-BY, HARRY))"));

}  // namespace
}  // namespace lsd
