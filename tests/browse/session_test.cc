#include "browse/session.h"

#include <gtest/gtest.h>

#include "workload/music_domain.h"

namespace lsd {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildMusicDomain(&db_); }

  LooseDb db_;
};

TEST_F(SessionTest, VisitBackForward) {
  BrowseSession session(&db_);
  EXPECT_FALSE(session.CanGoBack());
  EXPECT_FALSE(session.CanGoForward());

  ASSERT_TRUE(session.Visit("JOHN").ok());
  ASSERT_TRUE(session.Visit("PC#9-WAM").ok());
  ASSERT_TRUE(session.Visit("MOZART").ok());
  EXPECT_EQ(db_.entities().Name(session.current()), "MOZART");
  EXPECT_TRUE(session.CanGoBack());

  auto back = session.Back();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(db_.entities().Name(session.current()), "PC#9-WAM");
  EXPECT_TRUE(session.CanGoForward());

  auto fwd = session.Forward();
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(db_.entities().Name(session.current()), "MOZART");
  EXPECT_FALSE(session.CanGoForward());
}

TEST_F(SessionTest, VisitTruncatesForwardHistory) {
  BrowseSession session(&db_);
  ASSERT_TRUE(session.Visit("JOHN").ok());
  ASSERT_TRUE(session.Visit("PC#9-WAM").ok());
  ASSERT_TRUE(session.Back().ok());
  ASSERT_TRUE(session.Visit("FELIX").ok());
  EXPECT_FALSE(session.CanGoForward());
  EXPECT_EQ(session.trail().size(), 2u);  // JOHN, FELIX
}

TEST_F(SessionTest, ErrorsAtTheEnds) {
  BrowseSession session(&db_);
  EXPECT_EQ(session.Back().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(session.Visit("JOHN").ok());
  EXPECT_EQ(session.Back().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Forward().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SessionTest, UnknownEntityDoesNotDisturbTrail) {
  BrowseSession session(&db_);
  ASSERT_TRUE(session.Visit("JOHN").ok());
  EXPECT_TRUE(session.Visit("NOBODY").status().IsNotFound());
  EXPECT_EQ(db_.entities().Name(session.current()), "JOHN");
  EXPECT_EQ(session.trail().size(), 1u);
}

TEST_F(SessionTest, Breadcrumbs) {
  BrowseSession session(&db_);
  ASSERT_TRUE(session.Visit("JOHN").ok());
  ASSERT_TRUE(session.Visit("MOZART").ok());
  ASSERT_TRUE(session.Back().ok());
  EXPECT_EQ(session.Breadcrumbs(), "[JOHN] > MOZART");
}

TEST_F(SessionTest, VisitedNeighborhoodMatchesNavigate) {
  BrowseSession session(&db_);
  auto via_session = session.Visit("JOHN");
  auto via_db = db_.Navigate("JOHN");
  ASSERT_TRUE(via_session.ok());
  ASSERT_TRUE(via_db.ok());
  EXPECT_EQ(via_session->classes, via_db->classes);
  EXPECT_EQ(via_session->outgoing.size(), via_db->outgoing.size());
}

}  // namespace
}  // namespace lsd
