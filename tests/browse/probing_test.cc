// Reproduces the Sec 5 probing machinery: the broadness lattice, the
// retraction sets, the automatic-retraction menu (F4) and the USC
// quarterbacks cascade (Q3).
#include "browse/probing.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

class ProbingTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildCampusDomain(&db_); }

  EntityId E(const char* name) { return db_.entities().Intern(name); }

  std::set<std::string> Names(const std::vector<EntityId>& ids) {
    std::set<std::string> out;
    for (EntityId e : ids) out.insert(db_.entities().Name(e));
    return out;
  }

  const GeneralizationLattice& Lattice() {
    auto view = db_.View();
    EXPECT_TRUE(view.ok());
    if (lattice_ == nullptr) {
      lattice_ = std::make_unique<GeneralizationLattice>(
          GeneralizationLattice::Build(**view));
    }
    return *lattice_;
  }

  LooseDb db_;
  std::unique_ptr<GeneralizationLattice> lattice_;
};

TEST_F(ProbingTest, MinimalGeneralizationsAreCovers) {
  // QUARTERBACK ≺ FOOTBALL-PLAYER ≺ ATHLETE: the transitive edge
  // QUARTERBACK ≺ ATHLETE is in the closure, but the *minimal*
  // generalization is only FOOTBALL-PLAYER.
  EXPECT_EQ(Names(Lattice().MinimalGeneralizations(E("QUARTERBACK"))),
            (std::set<std::string>{"FOOTBALL-PLAYER"}));
  EXPECT_EQ(Names(Lattice().MinimalGeneralizations(E("FOOTBALL-PLAYER"))),
            (std::set<std::string>{"ATHLETE"}));
}

TEST_F(ProbingTest, RootsGeneralizeToAny) {
  EXPECT_EQ(Names(Lattice().MinimalGeneralizations(E("ATHLETE"))),
            (std::set<std::string>{"ANY"}));
  // COSTS has no generalization facts at all (Sec 5.2 uses
  // (COSTS, ≺, Δ) as its minimal generalization).
  EXPECT_EQ(Names(Lattice().MinimalGeneralizations(E("COSTS"))),
            (std::set<std::string>{"ANY"}));
}

TEST_F(ProbingTest, EntityWithMultipleMinimalGeneralizations) {
  // OPERA ≺ MUSIC and OPERA ≺ THEATER, neither comparable.
  EXPECT_EQ(Names(Lattice().MinimalGeneralizations(E("OPERA"))),
            (std::set<std::string>{"MUSIC", "THEATER"}));
}

TEST_F(ProbingTest, MinimalSpecializations) {
  EXPECT_EQ(Names(Lattice().MinimalSpecializations(E("STUDENT"))),
            (std::set<std::string>{"FRESHMAN", "SENIOR"}));
  EXPECT_EQ(Names(Lattice().MinimalSpecializations(E("FRESHMAN"))),
            (std::set<std::string>{"NONE"}));
}

TEST_F(ProbingTest, KnownnessTracksStoredFacts) {
  EXPECT_TRUE(Lattice().IsKnown(E("STUDENT")));
  EXPECT_TRUE(Lattice().IsKnown(E("COSTS")));
  EntityId ghost = db_.entities().Intern("ZZZ-GHOST");
  EXPECT_FALSE(Lattice().IsKnown(ghost));
}

TEST_F(ProbingTest, RetractionSetOfPaperQuery) {
  auto query = db_.Parse("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(query.ok());
  auto view = db_.View();
  ASSERT_TRUE(view.ok());
  Prober prober(*view, &Lattice(), &db_.entities());
  auto retractions = prober.RetractionSet(*query);

  std::set<std::string> rendered;
  for (const auto& [q, sub] : retractions) {
    rendered.insert(q.DebugString(db_.entities()));
  }
  // The paper's four minimally broader queries (Sec 5.2).
  EXPECT_TRUE(rendered.count("(FRESHMAN, LOVE, ?Z) and (?Z, COSTS, FREE)"))
      << "source specialization missing";
  EXPECT_TRUE(rendered.count("(STUDENT, LIKE, ?Z) and (?Z, COSTS, FREE)"))
      << "relationship generalization missing";
  EXPECT_TRUE(rendered.count("(STUDENT, LOVE, ?Z) and (?Z, ANY, FREE)"))
      << "COSTS -> ANY generalization missing";
  EXPECT_TRUE(rendered.count("(STUDENT, LOVE, ?Z) and (?Z, COSTS, CHEAP)"))
      << "target generalization missing";
}

// F4: the paper's menu with exactly the two successes.
TEST_F(ProbingTest, AutomaticRetractionMenu) {
  auto probe = db_.Probe("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_FALSE(probe->original_succeeded);
  EXPECT_EQ(probe->waves, 1);
  ASSERT_EQ(probe->successes.size(), 2u);

  std::set<std::string> menu_lines;
  for (const auto& s : probe->successes) {
    ASSERT_EQ(s.substitutions.size(), 1u);
    menu_lines.insert(s.substitutions[0].Describe(db_.entities()));
  }
  EXPECT_EQ(menu_lines,
            (std::set<std::string>{"FRESHMAN instead of STUDENT",
                                   "CHEAP instead of FREE"}));

  std::string menu = probe->Menu(db_.entities());
  EXPECT_NE(menu.find("Query failed. Retrying..."), std::string::npos);
  EXPECT_NE(menu.find("instead of STUDENT"), std::string::npos);
  EXPECT_NE(menu.find("You may select."), std::string::npos);
}

TEST_F(ProbingTest, SuccessfulQueryNeedsNoRetraction) {
  auto probe = db_.Probe("(FRESHMAN, LOVE, ?Z)");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->original_succeeded);
  EXPECT_TRUE(probe->successes.empty());
  EXPECT_TRUE(probe->original_result.Success());
}

// Sec 5.1: the USC quarterbacks query, rescued by GRADUATE-OF ->
// ATTENDED.
TEST_F(ProbingTest, QuarterbackProbe) {
  auto probe =
      db_.Probe("(?Z, IN, QUARTERBACK) and (?Z, GRADUATE-OF, USC)");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_FALSE(probe->original_succeeded);
  ASSERT_FALSE(probe->successes.empty());
  bool found = false;
  for (const auto& s : probe->successes) {
    for (const Substitution& sub : s.substitutions) {
      if (sub.Describe(db_.entities()) ==
          "ATTENDED instead of GRADUATE-OF") {
        found = true;
        // The rescued query finds Bob.
        ASSERT_EQ(s.result.rows.size(), 1u);
        EXPECT_EQ(db_.entities().Name(s.result.rows[0][0]), "BOB");
      }
    }
  }
  EXPECT_TRUE(found);
}

// Sec 5.2: queries whose entities are unknown are diagnosed as "no such
// database entities".
TEST_F(ProbingTest, MisspelledEntityDiagnosed) {
  auto probe = db_.Probe("(JOHN, LUVS, ?X)", ProbeOptions{.max_waves = 2});
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->original_succeeded);
  std::set<std::string> unknown;
  for (EntityId e : probe->unknown_entities) {
    unknown.insert(db_.entities().Name(e));
  }
  EXPECT_TRUE(unknown.count("LUVS"));
  EXPECT_TRUE(unknown.count("JOHN"));  // not in the campus domain either
  std::string menu = probe->Menu(db_.entities());
  EXPECT_NE(menu.find("no such database entities"), std::string::npos);
}

// Sec 5.2: second-wave retraction — when wave 1 fails entirely, the
// search continues one level broader.
TEST_F(ProbingTest, SecondWaveRetraction) {
  LooseDb db;
  db.Assert("C0", "ISA", "C1");
  db.Assert("C1", "ISA", "C2");
  db.Assert("X", "TOUCHES", "C2");
  // (X, TOUCHES, C0) fails; (X, TOUCHES, C1) fails; (X, TOUCHES, C2)
  // succeeds two generalizations up. (Note: inference pushes TOUCHES
  // facts *down* the hierarchy, not up, so the narrower queries fail.)
  auto probe = db.Probe("(X, TOUCHES, C0)");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_FALSE(probe->original_succeeded);
  EXPECT_EQ(probe->waves, 2);
  ASSERT_FALSE(probe->successes.empty());
  EXPECT_EQ(probe->successes[0].substitutions.size(), 2u);
}

// Sec 5.2: fully weakened templates are deleted.
TEST_F(ProbingTest, FullyWeakTemplateIsDeleted) {
  auto query = db_.Parse("(?Z, ANY, ANY) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(query.ok());
  auto view = db_.View();
  ASSERT_TRUE(view.ok());
  Prober prober(*view, &Lattice(), &db_.entities());
  auto retractions = prober.RetractionSet(*query);
  bool deletion_found = false;
  for (const auto& [q, sub] : retractions) {
    if (sub.kind == Substitution::Kind::kDeleteTemplate) {
      deletion_found = true;
      EXPECT_EQ(q.DebugString(db_.entities()), "(?Z, COSTS, FREE)");
    }
  }
  EXPECT_TRUE(deletion_found);
}

TEST_F(ProbingTest, ProbeBudgetIsRespected) {
  ProbeOptions options;
  options.max_queries = 3;
  options.max_waves = 5;
  auto probe = db_.Probe(
      "(STUDENT, LOVE, ?Z) and (?Z, COSTS, NOTHING-KNOWN)", options);
  ASSERT_TRUE(probe.ok());
  EXPECT_LE(probe->queries_attempted, 3u);
}

}  // namespace
}  // namespace lsd
