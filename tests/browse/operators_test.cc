// The Sec 6.1 operators: try(e), relation(...), limit(n),
// include/exclude(rule).
#include "browse/operators.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"

namespace lsd {
namespace {

class OperatorsTest : public ::testing::Test {
 protected:
  EntityId E(const char* name) { return db_.entities().Intern(name); }

  LooseDb db_;
};

TEST_F(OperatorsTest, TryFindsAllPositions) {
  db_.Assert("JOHN", "LIKES", "FELIX");
  db_.Assert("MARY", "LIKES", "JOHN");
  db_.Assert("BOSS", "JOHN", "X");  // JOHN used as a relationship name
  auto view = db_.View();
  ASSERT_TRUE(view.ok());
  std::vector<Fact> facts = TryEntity(**view, E("JOHN"));
  EXPECT_EQ(facts.size(), 3u);
}

TEST_F(OperatorsTest, TryDeduplicates) {
  db_.Assert("JOHN", "LIKES", "JOHN");  // appears in two positions
  auto view = db_.View();
  ASSERT_TRUE(view.ok());
  std::vector<Fact> facts = TryEntity(**view, E("JOHN"));
  EXPECT_EQ(facts.size(), 1u);
}

TEST_F(OperatorsTest, RenderTryViaFacade) {
  db_.Assert("JOHN", "LIKES", "FELIX");
  auto out = db_.Try("JOHN");
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("try(JOHN):"), std::string::npos);
  EXPECT_NE(out->find("(JOHN, LIKES, FELIX)"), std::string::npos);
  EXPECT_FALSE(db_.Try("NOBODY").ok());
}

// F5: the relation(employee, works-for department, earns salary) table.
TEST_F(OperatorsTest, RelationOperatorPaperExample) {
  db_.LoadText(R"(
(JOHN, IN, EMPLOYEE)
(TOM, IN, EMPLOYEE)
(MARY, IN, EMPLOYEE)
(JOHN, WORKS-FOR, SHIPPING)
(TOM, WORKS-FOR, ACCOUNTING)
(MARY, WORKS-FOR, RECEIVING)
(SHIPPING, IN, DEPARTMENT)
(ACCOUNTING, IN, DEPARTMENT)
(RECEIVING, IN, DEPARTMENT)
(JOHN, EARNS, $26000)
(TOM, EARNS, $27000)
(MARY, EARNS, $25000)
($26000, IN, SALARY)
($27000, IN, SALARY)
($25000, IN, SALARY)
)");
  auto table = db_.Relation("EMPLOYEE", {{"WORKS-FOR", "DEPARTMENT"},
                                         {"EARNS", "SALARY"}});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->rows.size(), 3u);
  std::string rendered = table->Render(db_.entities());
  EXPECT_NE(rendered.find("EMPLOYEE"), std::string::npos);
  EXPECT_NE(rendered.find("WORKS-FOR DEPARTMENT"), std::string::npos);
  EXPECT_NE(rendered.find("EARNS SALARY"), std::string::npos);
  EXPECT_NE(rendered.find("SHIPPING"), std::string::npos);
  EXPECT_NE(rendered.find("$26000"), std::string::npos);
}

TEST_F(OperatorsTest, RelationIsNotNecessarilyFirstNormalForm) {
  db_.LoadText(R"(
(SUE, IN, EMPLOYEE)
(SUE, WORKS-FOR, SHIPPING)
(SUE, WORKS-FOR, RECEIVING)
(SHIPPING, IN, DEPARTMENT)
(RECEIVING, IN, DEPARTMENT)
)");
  auto table = db_.Relation("EMPLOYEE", {{"WORKS-FOR", "DEPARTMENT"}});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1].size(), 2u);  // two departments in one cell
}

TEST_F(OperatorsTest, RelationSeesInferredMembership) {
  db_.Assert("MANAGER", "ISA", "EMPLOYEE");
  db_.Assert("ANN", "IN", "MANAGER");
  db_.Assert("ANN", "WORKS-FOR", "SHIPPING");
  db_.Assert("SHIPPING", "IN", "DEPARTMENT");
  auto table = db_.Relation("EMPLOYEE", {{"WORKS-FOR", "DEPARTMENT"}});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);  // ANN ∈ EMPLOYEE by inference
  EXPECT_EQ(db_.entities().Name(table->rows[0][0][0]), "ANN");
}

TEST_F(OperatorsTest, RelationValuesFilteredByTargetClass) {
  db_.Assert("JOHN", "IN", "EMPLOYEE");
  db_.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  db_.Assert("JOHN", "WORKS-FOR", "NOT-A-DEPT");
  db_.Assert("SHIPPING", "IN", "DEPARTMENT");
  auto table = db_.Relation("EMPLOYEE", {{"WORKS-FOR", "DEPARTMENT"}});
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows[0][1].size(), 1u);
  EXPECT_EQ(db_.entities().Name(table->rows[0][1][0]), "SHIPPING");
}

TEST_F(OperatorsTest, IncludeExcludeToggleInference) {
  db_.Assert("JOHN", "IN", "EMPLOYEE");
  db_.Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");

  auto before = db_.Query("(JOHN, WORKS-FOR, DEPARTMENT)");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->truth);

  ASSERT_TRUE(db_.SetRuleEnabled("mem-source", false).ok());
  EXPECT_FALSE(db_.IsRuleEnabled("mem-source"));
  auto off = db_.Query("(JOHN, WORKS-FOR, DEPARTMENT)");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->truth);

  ASSERT_TRUE(db_.SetRuleEnabled("mem-source", true).ok());
  auto on = db_.Query("(JOHN, WORKS-FOR, DEPARTMENT)");
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on->truth);

  EXPECT_TRUE(db_.SetRuleEnabled("no-such-rule", false).IsNotFound());
}

TEST_F(OperatorsTest, LimitOperatorControlsCompositionDistance) {
  db_.Assert("A", "R", "B");
  db_.Assert("B", "R", "C");
  db_.Assert("C", "R", "D");
  db_.SetCompositionLimit(2);
  auto assocs = db_.Associations("A", "D");
  ASSERT_TRUE(assocs.ok());
  EXPECT_TRUE(assocs->empty());
  db_.SetCompositionLimit(3);
  assocs = db_.Associations("A", "D");
  ASSERT_TRUE(assocs.ok());
  EXPECT_EQ(assocs->size(), 1u);
}

}  // namespace
}  // namespace lsd
