#include "browse/dot_export.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/music_domain.h"

namespace lsd {
namespace {

class DotExportTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildMusicDomain(&db_); }

  const ClosureView& View() {
    auto v = db_.View();
    EXPECT_TRUE(v.ok());
    return **v;
  }

  LooseDb db_;
};

TEST_F(DotExportTest, WholeGraphHasDigraphShell) {
  auto dot = ExportDot(View());
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(dot->rfind("digraph lsd {", 0), 0u);
  EXPECT_EQ(dot->back(), '\n');
  EXPECT_NE(dot->find("\"JOHN\" -> \"FELIX\" [label=\"LIKES\"];"),
            std::string::npos);
}

TEST_F(DotExportTest, TaxonomyEdgesAreStyled) {
  auto dot = ExportDot(View());
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("style=dashed, label=\"isa\""), std::string::npos);
  EXPECT_NE(dot->find("style=dotted, label=\"in\""), std::string::npos);
}

TEST_F(DotExportTest, TaxonomyCanBeExcluded) {
  DotOptions options;
  options.include_taxonomy = false;
  auto dot = ExportDot(View(), options);
  ASSERT_TRUE(dot.ok());
  EXPECT_EQ(dot->find("isa"), std::string::npos);
  EXPECT_EQ(dot->find("dotted"), std::string::npos);
}

TEST_F(DotExportTest, DerivedFactsRenderGrayWhenIncluded) {
  DotOptions options;
  options.include_derived = true;
  auto dot = ExportDot(View(), options);
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("color=gray"), std::string::npos);
  // Without the flag, no gray edges appear.
  auto base_only = ExportDot(View());
  ASSERT_TRUE(base_only.ok());
  EXPECT_EQ(base_only->find("color=gray"), std::string::npos);
}

TEST_F(DotExportTest, NeighborhoodScopesTheGraph) {
  auto dot = ExportNeighborhoodDot(View(),
                                   *db_.entities().Lookup("LEOPOLD"), 1);
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("LEOPOLD"), std::string::npos);
  EXPECT_NE(dot->find("MOZART"), std::string::npos);
  // SERKIN is 3 hops away: out of scope.
  EXPECT_EQ(dot->find("SERKIN"), std::string::npos);
}

TEST_F(DotExportTest, MaxFactsGuard) {
  DotOptions options;
  options.max_facts = 2;
  auto dot = ExportDot(View(), options);
  ASSERT_FALSE(dot.ok());
  EXPECT_EQ(dot.status().code(), StatusCode::kOutOfRange);
}

TEST_F(DotExportTest, QuotingEscapesSpecialCharacters) {
  db_.Assert("HE-SAID-\"HI\"", "QUOTES", "BACK\\SLASH");
  auto dot = ExportDot(View());
  ASSERT_TRUE(dot.ok());
  EXPECT_NE(dot->find("\\\""), std::string::npos);
  EXPECT_NE(dot->find("\\\\"), std::string::npos);
}

}  // namespace
}  // namespace lsd
