// Crash-torture harness for the durability stack (the tentpole's
// acceptance test): fork a writer child, kill it at every registered
// durability failpoint and at hundreds of random byte offsets of the
// log, then recover and prove that
//
//   * the recovered store is exactly a prefix of the committed mutation
//     history (never a corrupt record applied, never an acknowledged
//     mutation lost),
//   * the salvaged log accepts further appends, and
//   * once the interrupted history is finished on top of the recovered
//     store, the paper's Sec 5.2 probing sessions still produce their
//     golden menus.
//
// The child acknowledges each durably appended mutation with one byte
// in an ack file (raw write(2), so acknowledgements survive _exit);
// recovery must never fall behind the acknowledged count.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "replication/log_shipper.h"
#include "replication/monitor.h"
#include "replication/replication_client.h"
#include "server/shared_store.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace lsd {
namespace {

namespace fs = std::filesystem;

// ---- The committed history --------------------------------------------

// One mutation == exactly one WAL record, so "prefix of the history"
// and "prefix of the log" coincide.
struct Mutation {
  enum Kind { kAssert, kRetract, kRule, kToggle } kind;
  std::string a, b, c;  // fact names, or rule text/name in `a`/`b`
};

// The campus domain of Sec 5.2 (mirrors workload::BuildCampusDomain —
// the golden menus below depend on these exact facts) followed by a
// churn of extra asserts, retracts, rules, and toggles.
std::vector<Mutation> BuildHistory() {
  std::vector<Mutation> h;
  auto fact = [&h](const char* s, const char* r, const char* t) {
    h.push_back({Mutation::kAssert, s, r, t});
  };
  fact("FRESHMAN", "ISA", "STUDENT");
  fact("SENIOR", "ISA", "STUDENT");
  fact("LOVE", "ISA", "LIKE");
  fact("LIKE", "ISA", "ENJOY");
  fact("FREE", "ISA", "CHEAP");
  fact("OPERA", "ISA", "MUSIC");
  fact("OPERA", "ISA", "THEATER");
  fact("FRESHMAN", "LOVE", "MOVIE-NIGHT");
  fact("MOVIE-NIGHT", "COSTS", "FREE");
  fact("STUDENT", "LOVE", "CONCERT-PASS");
  fact("CONCERT-PASS", "COSTS", "CHEAP");
  fact("TOM", "ENROLLED-IN", "CS100");
  fact("SUE", "ENROLLED-IN", "MATH101");
  fact("CS100", "TAUGHT-BY", "HARRY");

  h.push_back({Mutation::kRule,
               "tort-chain: (?X, TORT-NEXT, ?Y) => (?X, TORT-REACH, ?Y)",
               "", ""});
  for (int i = 0; i < 60; ++i) {
    const std::string e = "CHURN-" + std::to_string(i);
    fact(e.c_str(), "TORT-NEXT", ("CHURN-" + std::to_string(i + 1)).c_str());
    if (i % 5 == 4) {
      // Retract a fact asserted a few steps earlier.
      h.push_back({Mutation::kRetract, "CHURN-" + std::to_string(i - 2),
                   "TORT-NEXT", "CHURN-" + std::to_string(i - 1)});
    }
    if (i % 20 == 10) {
      h.push_back({Mutation::kToggle, "tort-chain",
                   (i / 20) % 2 == 0 ? "off" : "on", ""});
    }
  }
  h.push_back({Mutation::kToggle, "tort-chain", "on", ""});
  return h;
}

// Applies one mutation; true iff it produced exactly one WAL record.
bool Apply(LooseDb& db, const Mutation& m) {
  switch (m.kind) {
    case Mutation::kAssert:
      db.Assert(m.a, m.b, m.c);
      return true;
    case Mutation::kRetract:
      return db.Retract(m.a, m.b, m.c).ok();
    case Mutation::kRule:
      return db.DefineRule(m.a).ok();
    case Mutation::kToggle:
      return db.SetRuleEnabled(m.a, m.b == "on").ok();
  }
  return false;
}

// ---- Prefix simulation ------------------------------------------------

struct SimState {
  std::set<std::string> facts;                // extra facts, "s|r|t"
  std::map<std::string, bool> rules;          // extra rules -> enabled
};

std::string Key(const std::string& a, const std::string& b,
                const std::string& c) {
  return a + "|" + b + "|" + c;
}

void Advance(SimState* sim, const Mutation& m) {
  switch (m.kind) {
    case Mutation::kAssert:
      sim->facts.insert(Key(m.a, m.b, m.c));
      break;
    case Mutation::kRetract:
      sim->facts.erase(Key(m.a, m.b, m.c));
      break;
    case Mutation::kRule: {
      size_t colon = m.a.find(':');
      sim->rules[m.a.substr(0, colon)] = true;
      break;
    }
    case Mutation::kToggle:
      sim->rules[m.a] = (m.b == "on");
      break;
  }
}

std::set<std::string> DumpFacts(const LooseDb& db) {
  std::set<std::string> out;
  const EntityTable& e = db.entities();
  db.store().base().ForEach(Pattern(), [&](const Fact& f) {
    out.insert(Key(e.Name(f.source), e.Name(f.relationship),
                   e.Name(f.target)));
    return true;
  });
  return out;
}

// The facts and rule census of a virgin database; the simulation works
// relative to this baseline.
struct Baseline {
  std::set<std::string> facts;
  size_t rule_count;
};

const Baseline& GetBaseline() {
  static const Baseline* b = [] {
    LooseDb fresh;
    auto* out = new Baseline;
    out->facts = DumpFacts(fresh);
    out->rule_count = fresh.rules().size();
    return out;
  }();
  return *b;
}

bool MatchesPrefix(const LooseDb& recovered, const SimState& sim) {
  const Baseline& base = GetBaseline();
  std::set<std::string> expected = base.facts;
  for (const std::string& f : sim.facts) expected.insert(f);
  if (DumpFacts(recovered) != expected) return false;
  if (recovered.rules().size() != base.rule_count + sim.rules.size()) {
    return false;
  }
  for (const auto& [name, enabled] : sim.rules) {
    bool found = false;
    for (const Rule& r : recovered.rules()) {
      if (r.name == name) {
        if (r.enabled != enabled) return false;
        found = true;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Finds the smallest prefix length >= min_len whose simulated state
// equals the recovered store, or -1.
int FindMatchingPrefix(const LooseDb& recovered,
                       const std::vector<Mutation>& history,
                       size_t min_len) {
  SimState sim;
  for (size_t m = 0; m <= history.size(); ++m) {
    if (m >= min_len && MatchesPrefix(recovered, sim)) {
      return static_cast<int>(m);
    }
    if (m < history.size()) Advance(&sim, history[m]);
  }
  return -1;
}

// ---- Golden sessions (Sec 5.2) ----------------------------------------

void ExpectGoldenMenus(LooseDb& db) {
  auto probe = db.Probe("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  std::string menu = probe->Menu(db.entities());
  EXPECT_NE(menu.find("FRESHMAN instead of STUDENT"), std::string::npos)
      << menu;
  EXPECT_NE(menu.find("CHEAP instead of FREE"), std::string::npos) << menu;

  auto query = db.Query("(TOM, ENROLLED-IN, ?C)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->rows.size(), 1u);
}

// ---- The harness ------------------------------------------------------

class CrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lsd_torture_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    history_ = BuildHistory();
  }
  void TearDown() override {
    failpoint::ClearAll();
    fs::remove_all(dir_);
  }

  std::string Prefix(const std::string& name) {
    return (dir_ / name).string();
  }

  static LooseDbOptions TortureOptions() {
    LooseDbOptions options;
    options.wal_segment_bytes = 400;   // force frequent rotation
    options.checkpoint_bytes = 1200;   // force mid-run auto-checkpoints
    return options;
  }

  // Runs the writer in a forked child with `failpoints` armed,
  // acknowledging each committed mutation in `ack_path`. Returns the
  // child's exit status.
  int RunWriterChild(const std::string& prefix, const std::string& ack_path,
                     const std::string& failpoints) {
    std::fflush(nullptr);  // no duplicated stdio buffers in the child
    pid_t pid = ::fork();
    if (pid == 0) {
      if (!failpoint::Configure(failpoints).ok()) ::_exit(81);
      LooseDb db(TortureOptions());
      if (!db.Open(prefix).ok()) ::_exit(82);
      int ack_fd =
          ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (ack_fd < 0) ::_exit(83);
      for (const Mutation& m : history_) {
        if (!Apply(db, m)) ::_exit(84);
        if (!db.wal_status().ok()) ::_exit(85);
        if (::write(ack_fd, "+", 1) != 1) ::_exit(86);
      }
      ::_exit(0);
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  static size_t CountAcks(const std::string& ack_path) {
    std::error_code ec;
    uint64_t size = fs::file_size(ack_path, ec);
    return ec ? 0 : static_cast<size_t>(size);
  }

  // Recovers the store at `prefix`, asserts the committed-prefix
  // property against `acked`, finishes the history, and checks the
  // golden sessions.
  void VerifyRecoveryAndFinish(const std::string& prefix, size_t acked,
                               const std::string& context) {
    LooseDb db(TortureOptions());
    Status opened = db.Open(prefix);
    ASSERT_TRUE(opened.ok()) << context << ": " << opened.ToString();
    int m = FindMatchingPrefix(db, history_, acked);
    ASSERT_GE(m, 0) << context
                    << ": recovered store matches no committed prefix >= "
                    << acked << " acked mutations ("
                    << db.last_recovery().ToString() << ")";
    // The salvaged log keeps accepting appends: finish the history.
    for (size_t i = static_cast<size_t>(m); i < history_.size(); ++i) {
      ASSERT_TRUE(Apply(db, history_[i])) << context << " at step " << i;
      ASSERT_TRUE(db.wal_status().ok())
          << context << ": " << db.wal_status().ToString();
    }
    ExpectGoldenMenus(db);
  }

  fs::path dir_;
  std::vector<Mutation> history_;
};

// Every registered durability kill site, each at several log positions.
// Keep in sync with FailpointTest.CanonicalDurabilitySitesExist.
TEST_F(CrashTortureTest, SurvivesKillAtEveryFailpoint) {
  struct Trial {
    const char* site;
    int skip;
  };
  const Trial kTrials[] = {
      {"wal.append.write", 0},  {"wal.append.write", 13},
      {"wal.append.write", 47}, {"wal.append.flush", 0},
      {"wal.append.flush", 29}, {"wal.rotate", 0},
      {"wal.rotate", 2},        {"snapshot.write", 0},
      {"snapshot.flush", 0},    {"snapshot.rename", 0},
      {"checkpoint.swap", 0},   {"wal.generation.swap", 0},
      {"wal.generation.swap", 1},
  };
  int trial_index = 0;
  for (const Trial& trial : kTrials) {
    SCOPED_TRACE(std::string(trial.site) + "@" +
                 std::to_string(trial.skip));
    const std::string prefix =
        Prefix("db" + std::to_string(trial_index));
    const std::string ack = Prefix("ack" + std::to_string(trial_index));
    ++trial_index;
    std::string spec = std::string(trial.site) + "=crash@" +
                       std::to_string(trial.skip);
    int exit_status = RunWriterChild(prefix, ack, spec);
    // Every trial targets a site its workload certainly reaches.
    ASSERT_EQ(exit_status, failpoint::kCrashExitStatus)
        << "site never fired (exit " << exit_status << ")";
    VerifyRecoveryAndFinish(prefix, CountAcks(ack), spec);
  }
}

// ---- Group commit under crashes ---------------------------------------
//
// Concurrent writers commit disjoint facts through a durable
// SharedStore while a group-commit failpoint kills the process either
// mid-batch-append (wal.batch.record: some of the group's records are
// staged, the rest are not) or between the group's flush and its fsync
// (wal.batch.sync: bytes in the page cache, ack not yet released).
// Each writer appends its fact's name to the ack file with one raw
// write(2) only AFTER Commit returned OK — i.e. after the group's
// fsync — so the ack file is a durable floor: every acked fact must be
// in the recovered store. Facts beyond the floor may or may not
// survive (they were never acknowledged), but anything recovered must
// come from the issued set — a torn group must never replay as
// garbage.
TEST_F(CrashTortureTest, GroupCommitCrashKeepsEveryAckedWrite) {
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 30;

  const char* kTrials[] = {
      "wal.batch.record=crash@0", "wal.batch.record=crash@13",
      "wal.batch.record=crash@47", "wal.batch.sync=crash@0",
      "wal.batch.sync=crash@5",
  };
  int trial_index = 0;
  for (const char* spec : kTrials) {
    SCOPED_TRACE(spec);
    const std::string prefix = Prefix("grp" + std::to_string(trial_index));
    const std::string ack = Prefix("gack" + std::to_string(trial_index));
    ++trial_index;

    std::fflush(nullptr);
    pid_t pid = ::fork();
    if (pid == 0) {
      if (!failpoint::Configure(spec).ok()) ::_exit(91);
      SharedStore store;
      SharedStoreDurability durability;
      durability.sync = WalSync::kFsync;
      durability.segment_bytes = 400;    // force rotation under groups
      durability.checkpoint_bytes = 1200;
      if (!store.OpenDurable(prefix, durability).ok()) ::_exit(92);
      int ack_fd =
          ::open(ack.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (ack_fd < 0) ::_exit(93);
      std::vector<std::thread> writers;
      for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&store, ack_fd, t] {
          for (int i = 0; i < kCommitsPerThread; ++i) {
            std::string name =
                "T" + std::to_string(t) + "-N" + std::to_string(i);
            auto committed = store.Commit([&name](LooseDb& db) {
              db.Assert(name, "MARKS", "DONE");
              return Status::OK();
            });
            if (!committed.ok()) ::_exit(94);
            std::string line = name + "\n";
            if (::write(ack_fd, line.data(), line.size()) !=
                static_cast<ssize_t>(line.size())) {
              ::_exit(95);
            }
          }
        });
      }
      for (auto& t : writers) t.join();
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
    ASSERT_EQ(WEXITSTATUS(status), failpoint::kCrashExitStatus)
        << "site never fired (exit " << WEXITSTATUS(status) << ")";

    // Complete lines only: a torn final line means the ack itself never
    // finished, so treating that write as unacknowledged is sound.
    std::set<std::string> acked;
    {
      std::string bytes;
      std::FILE* f = std::fopen(ack.c_str(), "rb");
      if (f != nullptr) {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
          bytes.append(buf, n);
        }
        std::fclose(f);
      }
      size_t start = 0, nl;
      while ((nl = bytes.find('\n', start)) != std::string::npos) {
        acked.insert(bytes.substr(start, nl - start));
        start = nl + 1;
      }
    }

    LooseDb db(TortureOptions());
    Status opened = db.Open(prefix);
    ASSERT_TRUE(opened.ok()) << opened.ToString();

    // Floor: every acknowledged write survived the crash.
    for (const std::string& name : acked) {
      auto q = db.Query("(" + name + ", MARKS, ?X)");
      ASSERT_TRUE(q.ok()) << q.status().ToString();
      EXPECT_TRUE(q->Success())
          << "acked write " << name << " lost (" << acked.size()
          << " acked, " << db.last_recovery().ToString() << ")";
    }
    // Ceiling: everything recovered was actually issued — a torn batch
    // must never resurface as an invented fact.
    const Baseline& base = GetBaseline();
    for (const std::string& key : DumpFacts(db)) {
      if (base.facts.count(key) > 0) continue;
      size_t bar = key.find('|');
      std::string name = key.substr(0, bar);
      EXPECT_TRUE(name.size() > 2 && name[0] == 'T' &&
                  key.substr(bar) == "|MARKS|DONE")
          << "recovered fact " << key << " was never issued";
    }
    // The salvaged log still accepts appends after recovery.
    db.Assert("POST-RECOVERY", "MARKS", "DONE");
    ASSERT_TRUE(db.wal_status().ok()) << db.wal_status().ToString();
  }
}

// ---- Replication under a primary kill ---------------------------------
//
// The primary runs in a forked child — durable store, log shipper,
// concurrent group-committing writers — and is killed mid-group by a
// batch failpoint while a follower in the parent tails its WAL. The
// follower only ever receives published (fsynced-and-acked) bytes, so
// its state is always a committed prefix. The parent then recovers the
// primary's files in-process and reships on the same port: the
// follower's reconnect loop must resume and converge to the recovered
// tip, which (durability invariant) contains every acked write — and
// the converged replica must match the recovered primary fact-for-fact.
TEST_F(CrashTortureTest, FollowerConvergesToAckedPrefixAfterPrimaryKill) {
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 30;
  const char* kTrials[] = {
      "wal.batch.record=crash@13",  // torn mid-batch-append
      "wal.batch.sync=crash@5",     // after flush, before the group fsync
  };
  int trial_index = 0;
  for (const char* spec : kTrials) {
    SCOPED_TRACE(spec);
    const std::string prefix = Prefix("repl" + std::to_string(trial_index));
    const std::string ack = Prefix("rack" + std::to_string(trial_index));
    const std::string port_path =
        Prefix("rport" + std::to_string(trial_index));
    const std::string scratch =
        Prefix("rscratch" + std::to_string(trial_index));
    ++trial_index;

    std::fflush(nullptr);
    pid_t pid = ::fork();
    if (pid == 0) {
      if (!failpoint::Configure(spec).ok()) ::_exit(91);
      SharedStore store;
      SharedStoreDurability durability;
      durability.sync = WalSync::kFsync;
      durability.segment_bytes = 400;
      durability.checkpoint_bytes = 1200;
      if (!store.OpenDurable(prefix, durability).ok()) ::_exit(92);
      LogShipperOptions ship_options;
      ship_options.heartbeat_ms = 25;
      LogShipper shipper(&store, ship_options);
      if (!shipper.Start().ok()) ::_exit(96);
      {
        // Publish the ephemeral port for the parent's follower.
        std::FILE* f = std::fopen(port_path.c_str(), "w");
        if (f == nullptr) ::_exit(97);
        std::fprintf(f, "%u\n", shipper.port());
        std::fclose(f);
      }
      int ack_fd = ::open(ack.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (ack_fd < 0) ::_exit(93);
      std::vector<std::thread> writers;
      for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&store, ack_fd, t] {
          for (int i = 0; i < kCommitsPerThread; ++i) {
            std::string name =
                "T" + std::to_string(t) + "-N" + std::to_string(i);
            auto committed = store.Commit([&name](LooseDb& db) {
              db.Assert(name, "MARKS", "DONE");
              return Status::OK();
            });
            if (!committed.ok()) ::_exit(94);
            std::string line = name + "\n";
            if (::write(ack_fd, line.data(), line.size()) !=
                static_cast<ssize_t>(line.size())) {
              ::_exit(95);
            }
          }
        });
      }
      for (auto& t : writers) t.join();
      ::_exit(0);
    }

    // Tail the child while it lives (and retry once it is dead).
    uint16_t port = 0;
    for (int i = 0; i < 2000 && port == 0; ++i) {
      std::FILE* f = std::fopen(port_path.c_str(), "r");
      if (f != nullptr) {
        unsigned p = 0;
        if (std::fscanf(f, "%u", &p) == 1 && p != 0) {
          port = static_cast<uint16_t>(p);
        }
        std::fclose(f);
      }
      if (port == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ASSERT_NE(port, 0) << "child never published its replication port";
    SharedStore follower;
    ReplicationMonitor monitor;
    ReplicationClientOptions follow_options;
    follow_options.port = port;
    follow_options.scratch_prefix = scratch;
    follow_options.backoff_base_ms = 20;
    follow_options.backoff_max_ms = 200;
    ReplicationClient client(&follower, &monitor, follow_options);
    ASSERT_TRUE(client.Start().ok());

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
    ASSERT_EQ(WEXITSTATUS(status), failpoint::kCrashExitStatus)
        << "site never fired (exit " << WEXITSTATUS(status) << ")";
    failpoint::ClearAll();  // the spec must not arm the parent's recovery

    std::set<std::string> acked;
    {
      std::string bytes;
      std::FILE* f = std::fopen(ack.c_str(), "rb");
      if (f != nullptr) {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
          bytes.append(buf, n);
        }
        std::fclose(f);
      }
      size_t start = 0, nl;
      while ((nl = bytes.find('\n', start)) != std::string::npos) {
        acked.insert(bytes.substr(start, nl - start));
        start = nl + 1;
      }
    }

    // Recover the primary in-process and reship on the same port; the
    // follower resumes from its last applied offset (or falls back to
    // a snapshot if recovery checkpointed the log away).
    SharedStore recovered;
    SharedStoreDurability durability;
    durability.sync = WalSync::kFsync;
    durability.segment_bytes = 400;
    durability.checkpoint_bytes = 1200;
    ASSERT_TRUE(recovered.OpenDurable(prefix, durability).ok());
    LogShipperOptions ship_options;
    ship_options.port = port;
    ship_options.heartbeat_ms = 25;
    LogShipper shipper(&recovered, ship_options);
    ASSERT_TRUE(shipper.Start().ok());

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    auto converged = [&] {
      const ReplicationStatus s = monitor.Sample();
      return s.ever_synced && s.lag_bytes == 0 &&
             s.applied_epoch == recovered.snapshot()->sequence();
    };
    while (!converged() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(converged())
        << "follower never converged after the primary kill ("
        << monitor.Sample().reconnects << " reconnects)";
    client.Stop();
    shipper.Stop();

    // Floor: every acknowledged write reached the replica.
    EpochPtr replica = follower.snapshot();
    std::set<std::string> replica_facts = DumpFacts(replica->db());
    for (const std::string& name : acked) {
      EXPECT_TRUE(replica_facts.count(Key(name, "MARKS", "DONE")) > 0)
          << "acked write " << name << " missing on the follower ("
          << acked.size() << " acked)";
    }
    // And the replica IS the recovered primary, fact for fact.
    EXPECT_EQ(replica_facts, DumpFacts(recovered.snapshot()->db()));
  }
}

// ---- Background compaction under crashes ------------------------------
//
// Compaction is a durability no-op: a merge writes no WAL records and
// publishes through the same epoch machinery as ordinary commits, so
// killing the process mid-merge (compact.merge, on the merge thread
// between the pin and the plan) or between the two tier swaps
// (compact.swap, inside the install commit) must lose nothing. The
// recovered store is exactly the acked floor plus possibly-unacked
// issued writes — never an invented fact, never a half-swapped tier —
// and compaction can be re-enabled on the recovered store.
TEST_F(CrashTortureTest, CompactionCrashIsADurabilityNoOp) {
  constexpr int kThreads = 3;
  constexpr int kCommitsPerThread = 40;
  const char* kTrials[] = {
      "compact.merge=crash@0", "compact.merge=crash@3",
      "compact.swap=crash@0",  "compact.swap=crash@2",
  };
  int trial_index = 0;
  for (const char* spec : kTrials) {
    SCOPED_TRACE(spec);
    const std::string prefix = Prefix("cmp" + std::to_string(trial_index));
    const std::string ack = Prefix("cack" + std::to_string(trial_index));
    ++trial_index;

    std::fflush(nullptr);
    pid_t pid = ::fork();
    if (pid == 0) {
      if (!failpoint::Configure(spec).ok()) ::_exit(91);
      SharedStore store;
      SharedStoreDurability durability;
      durability.sync = WalSync::kFsync;
      durability.segment_bytes = 400;     // rotate under compaction
      durability.checkpoint_bytes = 1200; // checkpoints interleave merges
      if (!store.OpenDurable(prefix, durability).ok()) ::_exit(92);
      CompactionOptions aggressive;
      aggressive.min_runs = 1;
      aggressive.overlay_ratio = 0.0;
      aggressive.min_overlay_bytes = 1;
      aggressive.poll_ms = 1;
      aggressive.backpressure_runs = 0;
      if (!store.EnableCompaction(aggressive).ok()) ::_exit(96);
      int ack_fd =
          ::open(ack.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (ack_fd < 0) ::_exit(93);
      auto acked_commit = [&store, ack_fd](const std::string& name) {
        auto committed = store.Commit([&name](LooseDb& db) {
          db.Assert(name, "MARKS", "DONE");
          return Status::OK();
        });
        if (!committed.ok()) ::_exit(94);
        std::string line = name + "\n";
        if (::write(ack_fd, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size())) {
          ::_exit(95);
        }
      };
      std::vector<std::thread> writers;
      for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&acked_commit, t] {
          for (int i = 0; i < kCommitsPerThread; ++i) {
            acked_commit("T" + std::to_string(t) + "-N" + std::to_string(i));
          }
        });
      }
      for (auto& t : writers) t.join();
      // The background thread may not have reached the armed site yet;
      // pump foreground merges (each with fresh overlay, so the plan is
      // never trivially empty) until the failpoint kills us.
      for (int i = 0; i < 1000; ++i) {
        acked_commit("PUMP-" + std::to_string(i));
        if (!store.CompactOnce().ok()) ::_exit(97);
      }
      ::_exit(0);  // site never fired: the parent will fail the trial
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
    ASSERT_EQ(WEXITSTATUS(status), failpoint::kCrashExitStatus)
        << "site never fired (exit " << WEXITSTATUS(status) << ")";

    std::set<std::string> acked;
    {
      std::string bytes;
      std::FILE* f = std::fopen(ack.c_str(), "rb");
      if (f != nullptr) {
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
          bytes.append(buf, n);
        }
        std::fclose(f);
      }
      size_t start = 0, nl;
      while ((nl = bytes.find('\n', start)) != std::string::npos) {
        acked.insert(bytes.substr(start, nl - start));
        start = nl + 1;
      }
    }

    // Recover as a durable SharedStore (the serving configuration).
    SharedStore recovered;
    SharedStoreDurability durability;
    durability.sync = WalSync::kFsync;
    durability.segment_bytes = 400;
    durability.checkpoint_bytes = 1200;
    ASSERT_TRUE(recovered.OpenDurable(prefix, durability).ok());

    // Floor: every acknowledged write survived, whatever the merge
    // thread was doing when the process died.
    LooseDb& db = recovered.snapshot()->db();
    std::set<std::string> facts = DumpFacts(db);
    for (const std::string& name : acked) {
      EXPECT_TRUE(facts.count(Key(name, "MARKS", "DONE")) > 0)
          << "acked write " << name << " lost to a compaction crash ("
          << acked.size() << " acked)";
    }
    // Ceiling: nothing recovered that was never issued — a torn merge
    // or half-swapped tier must not resurface as invented facts.
    const Baseline& base = GetBaseline();
    for (const std::string& key : facts) {
      if (base.facts.count(key) > 0) continue;
      size_t bar = key.find('|');
      std::string name = key.substr(0, bar);
      EXPECT_TRUE((name.rfind("T", 0) == 0 || name.rfind("PUMP-", 0) == 0) &&
                  key.substr(bar) == "|MARKS|DONE")
          << "recovered fact " << key << " was never issued";
    }
    // The recovered store serves, compacts, and keeps committing.
    auto q = recovered.snapshot()->db().Query("(?W, MARKS, DONE)");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_GE(q->rows.size(), acked.size());
    ASSERT_TRUE(recovered.EnableCompaction().ok());
    ASSERT_TRUE(recovered
                    .Commit([](LooseDb& db2) {
                      db2.Assert("POST-RECOVERY", "MARKS", "DONE");
                      return Status::OK();
                    })
                    .ok());
    Status merged = recovered.CompactOnce();
    ASSERT_TRUE(merged.ok()) << merged.ToString();
    auto q2 = recovered.snapshot()->db().Query("(POST-RECOVERY, MARKS, ?X)");
    ASSERT_TRUE(q2.ok());
    EXPECT_TRUE(q2->Success());
    recovered.StopCompaction();
  }
}

// A writer with no failpoints armed must complete and recover whole.
TEST_F(CrashTortureTest, CleanRunRecoversEverything) {
  const std::string prefix = Prefix("clean");
  const std::string ack = Prefix("ack");
  ASSERT_EQ(RunWriterChild(prefix, ack, ""), 0);
  ASSERT_EQ(CountAcks(ack), history_.size());
  LooseDb db(TortureOptions());
  ASSERT_TRUE(db.Open(prefix).ok());
  EXPECT_EQ(FindMatchingPrefix(db, history_, history_.size()),
            static_cast<int>(history_.size()))
      << db.last_recovery().ToString();
  ExpectGoldenMenus(db);
}

// Kill the log itself, not the process: truncate and corrupt the final
// log at hundreds of random byte offsets and prove every recovery is a
// committed prefix with zero checksum-invalid records accepted.
TEST_F(CrashTortureTest, SurvivesRandomByteOffsetDamage) {
  // Write the full history without checkpoints: with no snapshot, the
  // record count replayed identifies the recovered prefix exactly.
  LooseDbOptions options;
  options.wal_segment_bytes = 400;
  options.checkpoint_bytes = 0;
  const std::string prefix = Prefix("flat");
  {
    LooseDb db(options);
    ASSERT_TRUE(db.Open(prefix).ok());
    for (const Mutation& m : history_) ASSERT_TRUE(Apply(db, m));
  }

  // Snapshot the pristine segment files, in sequence order.
  struct Segment {
    std::string path;
    std::string bytes;
  };
  std::vector<Segment> pristine;
  for (int seq = 1; seq < 1000; ++seq) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), ".wal.%06d", seq);
    const std::string path = prefix + suffix;
    if (!fs::exists(path)) break;
    std::string bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    pristine.push_back({path, std::move(bytes)});
  }
  ASSERT_GE(pristine.size(), 3u) << "rotation produced too few segments";
  size_t total_bytes = 0;
  for (const Segment& s : pristine) total_bytes += s.bytes.size();

  // Restores the pristine log, then truncates it at global offset
  // `cut` (mode 0) or flips the byte at `cut` (mode 1).
  auto damage = [&](size_t cut, int mode) {
    for (const Segment& s : pristine) fs::remove(s.path);
    size_t start = 0;
    for (const Segment& s : pristine) {
      size_t end = start + s.bytes.size();
      std::string bytes = s.bytes;
      bool last = false;
      if (mode == 0) {
        if (cut <= start) break;  // this segment never existed
        if (cut < end) {
          bytes = s.bytes.substr(0, cut - start);
          last = true;
        }
      } else if (cut >= start && cut < end) {
        bytes[cut - start] ^= 0x20;
      }
      std::FILE* f = std::fopen(s.path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                bytes.size());
      std::fclose(f);
      if (last) break;
      start = end;
    }
  };

  Rng rng(20260806);
  const int kTrialsPerMode = 110;  // 220 damage recoveries total
  for (int mode = 0; mode < 2; ++mode) {
    for (int trial = 0; trial < kTrialsPerMode; ++trial) {
      size_t cut = rng.Uniform(total_bytes);
      SCOPED_TRACE((mode == 0 ? "truncate at " : "flip at ") +
                   std::to_string(cut));
      damage(cut, mode);

      LooseDb db(options);
      Status opened = db.Open(prefix);
      ASSERT_TRUE(opened.ok()) << opened.ToString();
      const RecoveryStats& stats = db.last_recovery();
      // With no snapshot, replayed records == prefix length. Verify
      // the store state is exactly that prefix: a single corrupt
      // record accepted, lost, or reordered would break the match.
      ASSERT_LE(stats.records_replayed, history_.size());
      SimState sim;
      for (size_t i = 0; i < stats.records_replayed; ++i) {
        Advance(&sim, history_[i]);
      }
      EXPECT_TRUE(MatchesPrefix(db, sim))
          << "recovered store is not the " << stats.records_replayed
          << "-record prefix (" << stats.ToString() << ")";
    }
  }
}

}  // namespace
}  // namespace lsd
