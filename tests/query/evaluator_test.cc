#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  ResultSet Eval(const std::string& text, EvalOptions options = {}) {
    auto r = db_.Query(text, options);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  Status EvalStatus(const std::string& text) {
    return db_.Query(text).ok() ? Status::OK()
                                : db_.Query(text).status();
  }

  std::set<std::string> Column(const ResultSet& r, size_t col = 0) {
    std::set<std::string> out;
    for (const auto& row : r.rows) {
      out.insert(db_.entities().Name(row[col]));
    }
    return out;
  }

  LooseDb db_;
};

TEST_F(EvaluatorTest, SingleTemplateQuery) {
  db_.Assert("JOHN", "LIKES", "FELIX");
  db_.Assert("JOHN", "LIKES", "MARY");
  ResultSet r = Eval("(JOHN, LIKES, ?X)");
  EXPECT_EQ(Column(r), (std::set<std::string>{"FELIX", "MARY"}));
}

TEST_F(EvaluatorTest, TemplateSeesInferredFacts) {
  db_.Assert("JOHN", "IN", "EMPLOYEE");
  db_.Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  ResultSet r = Eval("(JOHN, WORKS-FOR, ?X)");
  EXPECT_EQ(Column(r), (std::set<std::string>{"DEPARTMENT"}));
}

// Sec 2.7: the self-citing authors query Q1.
TEST_F(EvaluatorTest, SelfCitingAuthors) {
  workload::BuildBooksDomain(&db_);
  ResultSet r = Eval(
      "exists ?X ((?X, IN, BOOK) and (?Y, IN, PERSON) and "
      "(?X, CITES, ?X) and (?X, AUTHOR, ?Y))");
  EXPECT_EQ(Column(r), (std::set<std::string>{"ALICE"}));
}

// Sec 3.6: employees who earn more than 20000 (query Q2).
TEST_F(EvaluatorTest, EarnersOverThreshold) {
  db_.Assert("JOHN", "IN", "EMPLOYEE");
  db_.Assert("JOHN", "EARNS", "25000");
  db_.Assert("TOM", "IN", "EMPLOYEE");
  db_.Assert("TOM", "EARNS", "15000");
  ResultSet r = Eval(
      "exists ?Y ((?Z, IN, EMPLOYEE) and (?Z, EARNS, ?Y) and "
      "(?Y, >, 20000))");
  EXPECT_EQ(Column(r), (std::set<std::string>{"JOHN"}));
}

// Sec 2.7: propositions — "John and Felix like each other".
TEST_F(EvaluatorTest, TruePropositon) {
  db_.Assert("JOHN", "LIKES", "FELIX");
  db_.Assert("FELIX", "LIKES", "JOHN");
  ResultSet r = Eval("(JOHN, LIKES, FELIX) and (FELIX, LIKES, JOHN)");
  EXPECT_TRUE(r.is_proposition);
  EXPECT_TRUE(r.truth);
  EXPECT_TRUE(r.Success());
}

TEST_F(EvaluatorTest, FalseProposition) {
  db_.Assert("JOHN", "LIKES", "FELIX");
  ResultSet r = Eval("(JOHN, LIKES, FELIX) and (FELIX, LIKES, JOHN)");
  EXPECT_TRUE(r.is_proposition);
  EXPECT_FALSE(r.truth);
  EXPECT_FALSE(r.Success());
}

// Sec 2.7: negation via complementary relationship — books whose author
// is not John.
TEST_F(EvaluatorTest, NegationViaInequality) {
  db_.Assert("B1", "IN", "BOOK");
  db_.Assert("B2", "IN", "BOOK");
  db_.Assert("B1", "AUTHOR", "JOHN");
  db_.Assert("B2", "AUTHOR", "MARY");
  ResultSet r = Eval(
      "(?X, IN, BOOK) and exists ?A ((?X, AUTHOR, ?A) and "
      "(?A, /=, JOHN))");
  EXPECT_EQ(Column(r), (std::set<std::string>{"B2"}));
}

TEST_F(EvaluatorTest, Disjunction) {
  db_.Assert("A", "LOVES", "X");
  db_.Assert("B", "HATES", "X");
  ResultSet r = Eval("(?P, LOVES, X) or (?P, HATES, X)");
  EXPECT_EQ(Column(r), (std::set<std::string>{"A", "B"}));
}

TEST_F(EvaluatorTest, DisjunctionDeduplicates) {
  db_.Assert("A", "LOVES", "X");
  db_.Assert("A", "HATES", "X");
  ResultSet r = Eval("(?P, LOVES, X) or (?P, HATES, X)");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EvaluatorTest, UnsafeDisjunctionRejected) {
  db_.Assert("A", "R", "B");
  auto r = db_.Query("(?P, R, B) or (?Q, R, B)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, ExistsProjectsAndDeduplicates) {
  db_.Assert("TOM", "ENROLLED-IN", "CS100");
  db_.Assert("TOM", "ENROLLED-IN", "MATH101");
  ResultSet r = Eval("exists ?C (?S, ENROLLED-IN, ?C)");
  EXPECT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(Column(r), (std::set<std::string>{"TOM"}));
}

TEST_F(EvaluatorTest, ForallTrueOverActiveDomain) {
  db_.Assert("A", "HAS", "P");
  db_.Assert("A", "HAS", "Q");
  // (?X, =, ?X) holds for every entity, so the forall gate is open and
  // the result is exactly A's HAS targets.
  ResultSet r = Eval("(A, HAS, ?Z) and forall ?X (?X, =, ?X)");
  EXPECT_EQ(Column(r), (std::set<std::string>{"P", "Q"}));
}

TEST_F(EvaluatorTest, ForallFalseOverActiveDomain) {
  db_.Assert("A", "HAS", "P");
  // Not every regular entity HAS P (P itself does not), so the forall
  // gate is closed; active-domain semantics (see evaluator.h).
  ResultSet r = Eval("(A, HAS, ?Z) and forall ?X (?X, HAS, P)");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(EvaluatorTest, UnsafeForallRejected) {
  db_.Assert("A", "R", "B");
  auto r = db_.Query("forall ?X (?X, R, ?Y)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EvaluatorTest, TwoFreeVariablesGiveTuples) {
  db_.Assert("A", "R", "B");
  db_.Assert("C", "R", "D");
  ResultSet r = Eval("(?X, R, ?Y)");
  ASSERT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EvaluatorTest, FirstRowOnlyStopsEarly) {
  for (int i = 0; i < 100; ++i) {
    db_.Assert("A", "R", ("B" + std::to_string(i)).c_str());
  }
  EvalOptions options;
  options.first_row_only = true;
  ResultSet r = Eval("(A, R, ?X)", options);
  EXPECT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.Success());
}

TEST_F(EvaluatorTest, MaxRowsTruncates) {
  for (int i = 0; i < 50; ++i) {
    db_.Assert("A", "R", ("B" + std::to_string(i)).c_str());
  }
  EvalOptions options;
  options.max_rows = 10;
  ResultSet r = Eval("(A, R, ?X)", options);
  EXPECT_EQ(r.rows.size(), 10u);
  EXPECT_TRUE(r.truncated);
}

TEST_F(EvaluatorTest, StarNavigationQuery) {
  db_.Assert("JOHN", "LIKES", "FELIX");
  db_.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  ResultSet r = Eval("(JOHN, *, *)");
  EXPECT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns.size(), 2u);
}

// Sec 4.1: (*, E, *) differs from (?X, E, ?X) — the paper calls this
// out explicitly for self-citations.
TEST_F(EvaluatorTest, StarVersusRepeatedVariable) {
  db_.Assert("B1", "CITES", "B1");
  db_.Assert("B1", "CITES", "B2");
  ResultSet star = Eval("(*, CITES, *)");
  EXPECT_EQ(star.rows.size(), 2u);
  ResultSet self = Eval("(?X, CITES, ?X)");
  EXPECT_EQ(self.rows.size(), 1u);
  EXPECT_EQ(Column(self), (std::set<std::string>{"B1"}));
}

}  // namespace
}  // namespace lsd
