// Differential property test: the backtracking evaluator against a
// brute-force reference that enumerates every assignment of the query's
// variables over the interned universe and checks the formula by
// definition (Sec 2.7). Random small databases, random formulas.
#include <set>

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "query/evaluator.h"
#include "util/random.h"

namespace lsd {
namespace {

// Truth of `node` under a complete assignment, by the textbook
// definition. Quantifiers range over regular entities, mirroring the
// production evaluator's active-domain semantics.
bool Truth(const AstNode& node, const FactSource& view,
           const EntityTable& entities, std::vector<EntityId>& assign) {
  switch (node.kind) {
    case NodeKind::kAtom: {
      auto resolve = [&](const Term& t) {
        return t.is_entity() ? t.entity() : assign[t.var()];
      };
      return view.Contains(Fact(resolve(node.atom.source),
                                resolve(node.atom.relationship),
                                resolve(node.atom.target)));
    }
    case NodeKind::kAnd:
      for (const auto& c : node.children) {
        if (!Truth(*c, view, entities, assign)) return false;
      }
      return true;
    case NodeKind::kOr:
      for (const auto& c : node.children) {
        if (Truth(*c, view, entities, assign)) return true;
      }
      return false;
    case NodeKind::kExists: {
      EntityId saved = assign[node.quantified_var];
      for (EntityId e = 0; e < entities.size(); ++e) {
        // The virtual Δ/∇ facts (e.g. (NONE, r, t) by rewrite) hold
        // under Contains but are deliberately not enumerable — mirror
        // that by excluding ANY/NONE as witnesses (see closure_view.h).
        if (e == kEntTop || e == kEntBottom) continue;
        assign[node.quantified_var] = e;
        if (Truth(*node.children[0], view, entities, assign)) {
          assign[node.quantified_var] = saved;
          return true;
        }
      }
      assign[node.quantified_var] = saved;
      return false;
    }
    case NodeKind::kForall: {
      EntityId saved = assign[node.quantified_var];
      for (EntityId e = 0; e < entities.size(); ++e) {
        if (entities.Kind(e) != EntityKind::kRegular) continue;
        assign[node.quantified_var] = e;
        if (!Truth(*node.children[0], view, entities, assign)) {
          assign[node.quantified_var] = saved;
          return false;
        }
      }
      assign[node.quantified_var] = saved;
      return true;
    }
  }
  return false;
}

// Enumerates every assignment of the free variables over the universe
// and collects the satisfying tuples.
std::set<std::vector<EntityId>> BruteForce(const Query& q,
                                           const FactSource& view,
                                           const EntityTable& entities) {
  std::vector<VarId> free = q.FreeVars();
  std::vector<EntityId> assign(q.num_vars(), 0);
  std::set<std::vector<EntityId>> out;
  std::function<void(size_t)> rec = [&](size_t i) {
    if (i == free.size()) {
      if (Truth(*q.root(), view, entities, assign)) {
        std::vector<EntityId> row;
        for (VarId v : free) row.push_back(assign[v]);
        out.insert(row);
      }
      return;
    }
    for (EntityId e = 0; e < entities.size(); ++e) {
      if (e == kEntTop || e == kEntBottom) continue;  // see kExists note
      assign[free[i]] = e;
      rec(i + 1);
    }
  };
  rec(0);
  return out;
}

// Random formula generator: atoms over a small entity pool, composed
// with and/or/exists/forall. Relationship positions are constants (see
// evaluator.h: virtual relations are suppressed for unbound
// relationships, which a Contains-based reference cannot mirror).
class FormulaGen {
 public:
  FormulaGen(Rng* rng, const std::vector<EntityId>& pool,
             const std::vector<EntityId>& rels)
      : rng_(rng), pool_(pool), rels_(rels) {
    for (int i = 0; i < 3; ++i) {
      var_names_.push_back(std::string(1, static_cast<char>('A' + i)));
    }
  }

  Query Generate() {
    auto root = Node(2);
    return Query(std::move(root), var_names_);
  }

 private:
  Term RandomEndpoint() {
    if (rng_->Bernoulli(0.6)) {
      return Term::Var(static_cast<VarId>(rng_->Uniform(3)));
    }
    return Term::Entity(pool_[rng_->Uniform(pool_.size())]);
  }

  std::unique_ptr<AstNode> Atom() {
    return AstNode::Atom(
        Template(RandomEndpoint(),
                 Term::Entity(rels_[rng_->Uniform(rels_.size())]),
                 RandomEndpoint()));
  }

  std::unique_ptr<AstNode> Node(int depth) {
    if (depth == 0 || rng_->Bernoulli(0.4)) return Atom();
    switch (rng_->Uniform(4)) {
      case 0: {
        std::vector<std::unique_ptr<AstNode>> kids;
        kids.push_back(Node(depth - 1));
        kids.push_back(Node(depth - 1));
        return AstNode::And(std::move(kids));
      }
      case 1: {
        // Safe disjunction: both branches must share free variables, so
        // disjoin two atoms over the same variable pair.
        VarId a = static_cast<VarId>(rng_->Uniform(3));
        VarId b = static_cast<VarId>(rng_->Uniform(3));
        std::vector<std::unique_ptr<AstNode>> kids;
        for (int i = 0; i < 2; ++i) {
          kids.push_back(AstNode::Atom(Template(
              Term::Var(a),
              Term::Entity(rels_[rng_->Uniform(rels_.size())]),
              Term::Var(b))));
        }
        return AstNode::Or(std::move(kids));
      }
      case 2:
        return AstNode::Exists(static_cast<VarId>(rng_->Uniform(3)),
                               Node(depth - 1));
      default:
        return AstNode::Forall(static_cast<VarId>(rng_->Uniform(3)),
                               Node(depth - 1));
    }
  }

  Rng* rng_;
  std::vector<EntityId> pool_;
  std::vector<EntityId> rels_;
  std::vector<std::string> var_names_;
};

class EvaluatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorPropertyTest, MatchesBruteForceReference) {
  Rng rng(GetParam());
  LooseDb db;

  // A small random world: entities E0..E7, relations R0..R2, a couple
  // of ISA and IN links so the standard rules derive things.
  std::vector<EntityId> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(db.entities().Intern("E" + std::to_string(i)));
  }
  // Facts may use ISA/IN so the standard rules derive things; generated
  // query atoms avoid ISA, whose virtual axiom families ((E, ISA, E),
  // (E, ISA, ANY), ...) the Contains-based reference cannot mirror.
  std::vector<EntityId> assert_rels;
  std::vector<EntityId> query_rels;
  for (int i = 0; i < 3; ++i) {
    EntityId r = db.entities().Intern("R" + std::to_string(i));
    assert_rels.push_back(r);
    query_rels.push_back(r);
  }
  assert_rels.push_back(kEntIsa);
  assert_rels.push_back(kEntIn);
  query_rels.push_back(kEntIn);
  for (int i = 0; i < 14; ++i) {
    db.Assert(Fact(pool[rng.Uniform(pool.size())],
                   assert_rels[rng.Uniform(assert_rels.size())],
                   pool[rng.Uniform(pool.size())]));
  }

  auto view = db.View();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  Evaluator evaluator(*view, &db.entities());

  FormulaGen gen(&rng, pool, query_rels);
  int compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Query q = gen.Generate();
    auto got = evaluator.Evaluate(q);
    if (!got.ok()) continue;  // unsafe formulas are allowed to error
    std::set<std::vector<EntityId>> expected =
        BruteForce(q, **view, db.entities());
    std::set<std::vector<EntityId>> actual;
    if (got->is_proposition) {
      if (got->truth) actual.insert(std::vector<EntityId>{});
      if (!expected.empty()) {
        expected = {std::vector<EntityId>{}};
      }
    } else {
      actual.insert(got->rows.begin(), got->rows.end());
    }
    ++compared;
    EXPECT_EQ(actual, expected)
        << "formula: " << q.DebugString(db.entities()) << " seed "
        << GetParam() << " trial " << trial;
  }
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

// The merge-join execution path is an optimization, not a semantics
// change: every query must return the same rows with it on and off,
// under every join-order policy.
class MergeJoinAblationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeJoinAblationTest, SameRowsWithAndWithoutMergeJoin) {
  Rng rng(GetParam() + 1000);
  LooseDb db;
  std::vector<EntityId> pool;
  for (int i = 0; i < 10; ++i) {
    pool.push_back(db.entities().Intern("E" + std::to_string(i)));
  }
  std::vector<EntityId> rels;
  for (int i = 0; i < 3; ++i) {
    rels.push_back(db.entities().Intern("R" + std::to_string(i)));
  }
  for (int i = 0; i < 30; ++i) {
    db.Assert(Fact(pool[rng.Uniform(pool.size())],
                   rels[rng.Uniform(rels.size())],
                   pool[rng.Uniform(pool.size())]));
  }

  FormulaGen gen(&rng, pool, rels);
  int compared = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Query q = gen.Generate();
    for (JoinOrder order : {JoinOrder::kBoundCount, JoinOrder::kEstimatedCost,
                            JoinOrder::kFixed}) {
      EvalOptions with, without;
      with.join_order = without.join_order = order;
      with.merge_join = true;
      without.merge_join = false;
      auto a = db.Run(q, with);
      auto b = db.Run(q, without);
      ASSERT_EQ(a.ok(), b.ok())
          << "formula: " << q.DebugString(db.entities());
      if (!a.ok()) continue;
      ++compared;
      EXPECT_EQ(a->rows, b->rows)
          << "formula: " << q.DebugString(db.entities()) << " seed "
          << GetParam() << " order " << static_cast<int>(order);
      EXPECT_EQ(a->truth, b->truth);
    }
  }
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeJoinAblationTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace lsd
