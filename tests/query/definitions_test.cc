// The Sec 6.1 definition facility: named retrieval operators defined in
// the standard query language.
#include "query/definitions.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

class DefinitionsTest : public ::testing::Test {
 protected:
  void SetUp() override { workload::BuildBooksDomain(&db_); }

  std::set<std::string> Column(const ResultSet& r, size_t col = 0) {
    std::set<std::string> out;
    for (const auto& row : r.rows) {
      out.insert(db_.entities().Name(row[col]));
    }
    return out;
  }

  LooseDb db_;
};

TEST_F(DefinitionsTest, DefineAndCallWithEntityArg) {
  // The membership conjunct keeps the answer at instance level (rule 2b
  // also lifts authorship to the class PERSON).
  ASSERT_TRUE(db_.DefineOperator(
                    "author-of(?B, ?A) := (?B, IN, BOOK) and "
                    "(?B, AUTHOR, ?A) and (?A, IN, PERSON)")
                  .ok());
  auto r = db_.Call("author-of(B-LOGIC, ?WHO)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Column(*r), (std::set<std::string>{"ALICE"}));
}

TEST_F(DefinitionsTest, CallWithVariableArgsGivesAllPairs) {
  ASSERT_TRUE(db_.DefineOperator(
                    "author-of(?B, ?A) := (?B, AUTHOR, ?A) and "
                    "(?A, IN, PERSON)")
                  .ok());
  auto r = db_.Call("author-of(?BOOK, ?WHO)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->columns.size(), 2u);
}

TEST_F(DefinitionsTest, StarArgMintsAnonymousVariable) {
  ASSERT_TRUE(
      db_.DefineOperator("author-of(?B, ?A) := (?B, AUTHOR, ?A)").ok());
  auto r = db_.Call("author-of(*, ?WHO)");
  ASSERT_TRUE(r.ok());
  // Two output columns (the anonymous book and the author).
  EXPECT_EQ(r->columns.size(), 2u);
}

TEST_F(DefinitionsTest, TryOperatorIsDefinable) {
  // The spirit of the built-in try(e), Sec 6.1, as a defined operator
  // for the source position.
  ASSERT_TRUE(
      db_.DefineOperator("about(?E, ?R, ?T) := (?E, ?R, ?T)").ok());
  auto r = db_.Call("about(B-LOGIC, *, *)");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->rows.size(), 3u);  // IN BOOK, AUTHOR ALICE, CITES itself
}

TEST_F(DefinitionsTest, DefinitionsComposeWithQuantifiers) {
  ASSERT_TRUE(db_.DefineOperator(
                    "self-citing(?A) := exists ?B ((?B, CITES, ?B) and "
                    "(?B, AUTHOR, ?A) and (?A, IN, PERSON))")
                  .ok());
  auto r = db_.Call("self-citing(?WHO)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Column(*r), (std::set<std::string>{"ALICE"}));
  // Proposition form: a ground invocation.
  auto p = db_.Call("self-citing(ALICE)");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->is_proposition);
  EXPECT_TRUE(p->truth);
  auto q = db_.Call("self-citing(CAROL)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->truth);
}

TEST_F(DefinitionsTest, ArityMismatchRejected) {
  ASSERT_TRUE(
      db_.DefineOperator("author-of(?B, ?A) := (?B, AUTHOR, ?A)").ok());
  auto r = db_.Call("author-of(B-LOGIC)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DefinitionsTest, UnknownDefinitionIsNotFound) {
  auto r = db_.Call("nope(X)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(DefinitionsTest, DuplicateNameRejected) {
  ASSERT_TRUE(db_.DefineOperator("f(?X) := (?X, IN, BOOK)").ok());
  EXPECT_EQ(db_.DefineOperator("f(?Y) := (?Y, IN, PERSON)").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(DefinitionsTest, ParameterMustOccurInBody) {
  Status s = db_.DefineOperator("f(?X, ?Y) := (?X, IN, BOOK)");
  EXPECT_TRUE(s.IsParseError());
}

TEST_F(DefinitionsTest, BadSyntaxRejected) {
  EXPECT_TRUE(db_.DefineOperator("f(?X) (?X, IN, BOOK)").IsParseError());
  EXPECT_TRUE(db_.DefineOperator("f ?X := (?X, IN, BOOK)").IsParseError());
  EXPECT_TRUE(db_.DefineOperator("f(X) := (X, IN, BOOK)").IsParseError());
}

TEST_F(DefinitionsTest, DefinitionsLoadFromLsdText) {
  Status s = db_.LoadText(
      "(B-NEW, IN, BOOK)\n"
      "define books() := (?B, IN, BOOK)\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_TRUE(db_.definitions().Has("books"));
  auto r = db_.Call("books()");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 4u);
}

TEST_F(DefinitionsTest, SameVariableForTwoParams) {
  ASSERT_TRUE(db_.DefineOperator(
                    "related(?X, ?Y) := (?X, CITES, ?Y)")
                  .ok());
  // Passing the same variable to both parameters asks for self-citers.
  auto r = db_.Call("related(?S, ?S)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Column(*r), (std::set<std::string>{"B-LOGIC"}));
}

}  // namespace
}  // namespace lsd
