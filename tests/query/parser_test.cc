#include "query/parser.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  Query Parse(const std::string& text) {
    auto q = ParseQuery(text, &entities_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(*q);
  }

  EntityTable entities_;
};

TEST_F(ParserTest, SingleAtom) {
  Query q = Parse("(JOHN, LIKES, ?X)");
  ASSERT_EQ(q.root()->kind, NodeKind::kAtom);
  EXPECT_EQ(q.FreeVars().size(), 1u);
  EXPECT_EQ(q.var_names()[0], "X");
  EXPECT_EQ(q.DebugString(entities_), "(JOHN, LIKES, ?X)");
}

TEST_F(ParserTest, StarMintsAnonymousVariables) {
  Query q = Parse("(JOHN, *, *)");
  EXPECT_EQ(q.FreeVars().size(), 2u);
  // Two distinct variables: (JOHN, *, *) must NOT be (JOHN, ?x, ?x).
  const Template& t = q.root()->atom;
  EXPECT_NE(t.relationship.var(), t.target.var());
}

TEST_F(ParserTest, ConjunctionFlattens) {
  Query q = Parse("(A, R, ?X) and (?X, S, B) and (?X, T, C)");
  ASSERT_EQ(q.root()->kind, NodeKind::kAnd);
  EXPECT_EQ(q.root()->children.size(), 3u);
}

TEST_F(ParserTest, PrecedenceAndBindsTighterThanOr) {
  Query q = Parse("(A, R, ?X) and (B, S, ?X) or (C, T, ?X)");
  ASSERT_EQ(q.root()->kind, NodeKind::kOr);
  ASSERT_EQ(q.root()->children.size(), 2u);
  EXPECT_EQ(q.root()->children[0]->kind, NodeKind::kAnd);
  EXPECT_EQ(q.root()->children[1]->kind, NodeKind::kAtom);
}

TEST_F(ParserTest, ParenthesizedGrouping) {
  Query q = Parse("((A, R, ?X) or (B, S, ?X)) and (C, T, ?X)");
  ASSERT_EQ(q.root()->kind, NodeKind::kAnd);
  EXPECT_EQ(q.root()->children[0]->kind, NodeKind::kOr);
}

TEST_F(ParserTest, ExistsBindsVariable) {
  Query q = Parse("exists ?Y ((?Y, IN, BOOK) and (?Y, AUTHOR, ?X))");
  ASSERT_EQ(q.root()->kind, NodeKind::kExists);
  auto free = q.FreeVars();
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(q.var_names()[free[0]], "X");
}

TEST_F(ParserTest, MultiVariableQuantifier) {
  Query q = Parse("exists ?A ?B (?A, LIKES, ?B)");
  ASSERT_EQ(q.root()->kind, NodeKind::kExists);
  ASSERT_EQ(q.root()->children[0]->kind, NodeKind::kExists);
  EXPECT_TRUE(q.FreeVars().empty());
  EXPECT_TRUE(q.IsProposition());
}

TEST_F(ParserTest, ForallParses) {
  Query q = Parse("forall ?S ((?S, IN, STUDENT) and (?S, LOVES, ?Z))");
  EXPECT_EQ(q.root()->kind, NodeKind::kForall);
  EXPECT_EQ(q.FreeVars().size(), 1u);
}

TEST_F(ParserTest, PaperSelfCitationQuery) {
  // Sec 2.7: all authors who cite themselves.
  Query q = Parse(
      "exists ?X ((?X, IN, BOOK) and (?Y, IN, PERSON) and "
      "(?X, CITES, ?X) and (?X, AUTHOR, ?Y))");
  EXPECT_EQ(q.FreeVars().size(), 1u);
  EXPECT_EQ(q.var_names()[q.FreeVars()[0]], "Y");
}

TEST_F(ParserTest, CloneIsDeepAndEqualText) {
  Query q = Parse("(A, R, ?X) and exists ?Y (?X, S, ?Y)");
  Query c = q.Clone();
  EXPECT_EQ(q.DebugString(entities_), c.DebugString(entities_));
  // Mutating the clone leaves the original intact.
  c.mutable_root()->children[0]->atom.source =
      Term::Entity(entities_.Intern("Z"));
  EXPECT_NE(q.DebugString(entities_), c.DebugString(entities_));
}

TEST_F(ParserTest, ErrorsOnMalformedInput) {
  EXPECT_FALSE(ParseQuery("(A, B)", &entities_).ok());
  EXPECT_FALSE(ParseQuery("(A, B, C,)", &entities_).ok());
  EXPECT_FALSE(ParseQuery("(A, B, C) and", &entities_).ok());
  EXPECT_FALSE(ParseQuery("exists (A, B, C)", &entities_).ok());
  EXPECT_FALSE(ParseQuery("(A, B, C) (D, E, F)", &entities_).ok());
  EXPECT_FALSE(ParseQuery("", &entities_).ok());
  EXPECT_FALSE(ParseQuery("((A, B, C)", &entities_).ok());
}

TEST_F(ParserTest, VariableNamesAreCaseInsensitive) {
  Query q = Parse("(?x, R, ?X)");
  const Template& t = q.root()->atom;
  EXPECT_EQ(t.source.var(), t.target.var());
}

TEST_F(ParserTest, UnicodeRelationsInQueries) {
  Query q = Parse("(?X, ∈, BOOK)");
  EXPECT_EQ(q.root()->atom.relationship.entity(), kEntIn);
}

}  // namespace
}  // namespace lsd
