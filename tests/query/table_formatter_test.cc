#include "query/table_formatter.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace lsd {
namespace {

TEST(TableFormatterTest, RendersHeadersAndRows) {
  TableFormatter t({"A", "B"});
  t.AddRow({"x", "y"});
  std::string out = t.Render();
  EXPECT_NE(out.find("| A"), std::string::npos);
  EXPECT_NE(out.find("| x"), std::string::npos);
  // Columns aligned: every line has the same length.
  size_t first_len = out.find('\n');
  for (std::string_view line : Split(out, '\n')) {
    if (line.empty()) continue;
    EXPECT_EQ(line.size(), first_len);
  }
}

TEST(TableFormatterTest, MultiLineCellsStack) {
  TableFormatter t({"NAME", "DEPTS"});
  t.AddRow({"SUE", "SHIPPING\nRECEIVING"});
  std::string out = t.Render();
  EXPECT_NE(out.find("SHIPPING"), std::string::npos);
  EXPECT_NE(out.find("RECEIVING"), std::string::npos);
  // The stacked value is two physical lines inside one logical row:
  // exactly three rule lines (top, under header, bottom).
  int rules = 0;
  for (std::string_view line : Split(out, '\n')) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 3);
}

TEST(TableFormatterTest, ShortRowsArePadded) {
  TableFormatter t({"A", "B", "C"});
  t.AddRow({"only-a"});
  std::string out = t.Render();
  EXPECT_NE(out.find("only-a"), std::string::npos);
}

TEST(TableFormatterTest, EmptyTableRendersHeaderOnly) {
  TableFormatter t({"HEADER"});
  std::string out = t.Render();
  EXPECT_NE(out.find("HEADER"), std::string::npos);
  int rules = 0;
  for (std::string_view line : Split(out, '\n')) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 2);  // no trailing rule when there are no rows
}

TEST(FormatResultTest, PropositionRendersTruth) {
  EntityTable entities;
  ResultSet r;
  r.is_proposition = true;
  r.truth = true;
  EXPECT_EQ(FormatResult(r, entities), "true\n");
  r.truth = false;
  EXPECT_EQ(FormatResult(r, entities), "false\n");
}

TEST(FormatResultTest, RowsRenderEntityNames) {
  EntityTable entities;
  ResultSet r;
  r.columns = {"X"};
  r.rows = {{entities.Intern("FELIX")}};
  std::string out = FormatResult(r, entities);
  EXPECT_NE(out.find("FELIX"), std::string::npos);
  EXPECT_NE(out.find("| X"), std::string::npos);
}

TEST(FormatResultTest, TruncationIsAnnotated) {
  EntityTable entities;
  ResultSet r;
  r.columns = {"X"};
  r.rows = {{entities.Intern("A")}};
  r.truncated = true;
  std::string out = FormatResult(r, entities);
  EXPECT_NE(out.find("(truncated)"), std::string::npos);
}

}  // namespace
}  // namespace lsd
