// Differential property test for the query planner: every JoinOrder
// policy must produce the same results on the same query — the plan
// changes performance, never semantics — and the parallel probing waves
// must produce the same retraction menu at any thread count. Random
// small worlds, random conjunctive queries including the hostile cases
// (comparators, membership, literal ANY/NONE constants).
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "query/evaluator.h"
#include "util/random.h"

namespace lsd {
namespace {

constexpr JoinOrder kAllOrders[] = {JoinOrder::kEstimatedCost,
                                    JoinOrder::kBoundCount,
                                    JoinOrder::kFixed};

const char* OrderName(JoinOrder o) {
  switch (o) {
    case JoinOrder::kEstimatedCost:
      return "kEstimatedCost";
    case JoinOrder::kBoundCount:
      return "kBoundCount";
    case JoinOrder::kFixed:
      return "kFixed";
  }
  return "?";
}

// Conjunctions of 1-4 atoms over a small pool, deliberately including
// what the planner has to be careful about: comparator atoms (safety
// deferral), membership, and literal ANY/NONE constants (rewrite
// scans). Relationship positions are constants, and ISA atoms are
// excluded: virtual relations are suppressed for unbound relationships
// and ISA axioms bind variables to ANY/NONE (see evaluator.h), so
// results for those query classes legitimately depend on conjunct
// order — no ordering policy can agree on them.
class ConjunctionGen {
 public:
  ConjunctionGen(Rng* rng, std::vector<EntityId> pool,
                 std::vector<EntityId> rels)
      : rng_(rng), pool_(std::move(pool)), rels_(std::move(rels)) {
    for (int i = 0; i < 4; ++i) {
      var_names_.push_back(std::string(1, static_cast<char>('A' + i)));
    }
  }

  Query Generate() {
    const size_t n = 1 + rng_->Uniform(4);
    std::vector<std::unique_ptr<AstNode>> atoms;
    for (size_t i = 0; i < n; ++i) atoms.push_back(Atom());
    auto root = n == 1 ? std::move(atoms[0]) : AstNode::And(std::move(atoms));
    return Query(std::move(root), var_names_);
  }

 private:
  Term Endpoint() {
    const uint32_t pick = rng_->Uniform(10);
    if (pick < 5) return Term::Var(static_cast<VarId>(rng_->Uniform(4)));
    if (pick == 5) return Term::Entity(kEntTop);
    if (pick == 6) return Term::Entity(kEntBottom);
    return Term::Entity(pool_[rng_->Uniform(pool_.size())]);
  }

  Term Relationship() {
    return Term::Entity(rels_[rng_->Uniform(rels_.size())]);
  }

  std::unique_ptr<AstNode> Atom() {
    return AstNode::Atom(Template(Endpoint(), Relationship(), Endpoint()));
  }

  Rng* rng_;
  std::vector<EntityId> pool_;
  std::vector<EntityId> rels_;
  std::vector<std::string> var_names_;
};

// A random world with an ISA hierarchy (so probing has somewhere to go),
// numeric entities (so comparators hold sometimes), and plain relations.
void BuildWorld(Rng* rng, LooseDb* db, std::vector<EntityId>* pool,
                std::vector<EntityId>* rels) {
  for (int i = 0; i < 8; ++i) {
    pool->push_back(db->entities().Intern("E" + std::to_string(i)));
  }
  for (int v : {3, 7, 25}) {
    pool->push_back(db->entities().Intern(std::to_string(v)));
  }
  std::vector<EntityId> assert_rels;
  for (int i = 0; i < 3; ++i) {
    EntityId r = db->entities().Intern("R" + std::to_string(i));
    assert_rels.push_back(r);
    rels->push_back(r);
  }
  // ISA facts shape the lattice (probing walks it) but ISA atoms are
  // never generated as query conjuncts; see the ConjunctionGen note.
  assert_rels.push_back(kEntIsa);
  assert_rels.push_back(kEntIn);
  rels->push_back(kEntIn);
  rels->push_back(kEntLess);
  rels->push_back(kEntEq);
  // A small chain so the generalization lattice is non-trivial.
  db->Assert(Fact((*pool)[0], kEntIsa, (*pool)[1]));
  db->Assert(Fact((*pool)[1], kEntIsa, (*pool)[2]));
  for (int i = 0; i < 16; ++i) {
    db->Assert(Fact((*pool)[rng->Uniform(pool->size())],
                    assert_rels[rng->Uniform(assert_rels.size())],
                    (*pool)[rng->Uniform(pool->size())]));
  }
}

class PlannerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// All ordering policies — and the planner with a warm plan cache —
// return identical ResultSets, and fail (unsafe conjunction) on exactly
// the same queries.
TEST_P(PlannerPropertyTest, AllPoliciesAgree) {
  Rng rng(GetParam());
  LooseDb db;
  std::vector<EntityId> pool;
  std::vector<EntityId> rels;
  BuildWorld(&rng, &db, &pool, &rels);
  auto view = db.View();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  Evaluator evaluator(*view, &db.entities());

  PlannerCache cache;
  ConjunctionGen gen(&rng, pool, rels);
  for (int trial = 0; trial < 20; ++trial) {
    Query q = gen.Generate();
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(trial) + ": " +
                 q.DebugString(db.entities()));

    std::optional<StatusOr<ResultSet>> reference;
    for (JoinOrder order : kAllOrders) {
      for (PlannerCache* planner :
           {static_cast<PlannerCache*>(nullptr), &cache}) {
        if (planner != nullptr && order != JoinOrder::kEstimatedCost) {
          continue;  // other policies ignore the planner
        }
        EvalOptions options;
        options.join_order = order;
        options.planner = planner;
        auto got = evaluator.Evaluate(q, options);
        if (!reference.has_value()) {
          reference = std::move(got);
          continue;
        }
        ASSERT_EQ(got.ok(), reference->ok())
            << OrderName(order) << " disagrees on safety; reference: "
            << (reference->ok() ? "ok" : reference->status().ToString())
            << " got: " << (got.ok() ? "ok" : got.status().ToString());
        if (!got.ok()) continue;
        EXPECT_EQ(got->rows, (*reference)->rows) << OrderName(order);
        EXPECT_EQ(got->is_proposition, (*reference)->is_proposition);
        EXPECT_EQ(got->truth, (*reference)->truth) << OrderName(order);
        EXPECT_EQ(got->truncated, (*reference)->truncated)
            << OrderName(order);
      }
    }
    // Running the same shape twice through the cache must hit it.
    ASSERT_GT(cache.plan_count(), 0u);
  }
}

// A probe's retraction menu — the successes, their substitution paths,
// their result rows, and the search counters — is identical across
// ordering policies and across wave-evaluation thread counts.
TEST_P(PlannerPropertyTest, ProbeMenuInvariantAcrossPoliciesAndThreads) {
  Rng rng(GetParam());
  LooseDb db;
  std::vector<EntityId> pool;
  std::vector<EntityId> rels;
  BuildWorld(&rng, &db, &pool, &rels);

  ConjunctionGen gen(&rng, pool, rels);
  int probed = 0;
  for (int trial = 0; trial < 6 && probed < 3; ++trial) {
    Query q = gen.Generate();
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(trial) + ": " +
                 q.DebugString(db.entities()));

    ProbeOptions base;
    base.max_waves = 3;
    base.max_queries = 400;

    std::optional<ProbeResult> reference;
    auto check = [&](const ProbeOptions& options, const std::string& label) {
      auto got = db.Probe(q, options);
      if (!reference.has_value()) {
        if (!got.ok()) return false;  // unsafe original: skip this query
        reference = std::move(*got);
        return true;
      }
      EXPECT_TRUE(got.ok()) << label;
      if (!got.ok()) return true;
      EXPECT_EQ(got->original_succeeded, reference->original_succeeded)
          << label;
      EXPECT_EQ(got->waves, reference->waves) << label;
      EXPECT_EQ(got->queries_attempted, reference->queries_attempted)
          << label;
      EXPECT_EQ(got->exhausted, reference->exhausted) << label;
      EXPECT_EQ(got->Menu(db.entities()), reference->Menu(db.entities()))
          << label;
      EXPECT_EQ(got->successes.size(), reference->successes.size()) << label;
      if (got->successes.size() != reference->successes.size()) return true;
      for (size_t i = 0; i < got->successes.size(); ++i) {
        EXPECT_EQ(got->successes[i].result.rows,
                  reference->successes[i].result.rows)
            << label << " success " << i;
      }
      return true;
    };

    ProbeOptions options = base;
    bool usable = true;
    for (JoinOrder order : kAllOrders) {
      options.join_order = order;
      options.num_threads = 1;
      if (!check(options, std::string("order=") + OrderName(order))) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    options.join_order = JoinOrder::kEstimatedCost;
    for (unsigned threads : {2u, 4u, 8u}) {
      options.num_threads = threads;
      check(options, "threads=" + std::to_string(threads));
    }
    ++probed;
  }
  EXPECT_GT(probed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace lsd
