#include "query/lexer.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, TokenizesTemplate) {
  auto tokens = Tokenize("(JOHN, *, ?X)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kEntity, TokenKind::kComma,
                TokenKind::kStar, TokenKind::kComma, TokenKind::kVariable,
                TokenKind::kRParen, TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[1].text, "JOHN");
  EXPECT_EQ((*tokens)[5].text, "X");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("AND Or exists FORALL");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{TokenKind::kAnd, TokenKind::kOr,
                                    TokenKind::kExists, TokenKind::kForall,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, EntityTokensKeepSpecialCharacters) {
  auto tokens = Tokenize("PC#9-WAM $25000 /=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "PC#9-WAM");
  EXPECT_EQ((*tokens)[1].text, "$25000");
  EXPECT_EQ((*tokens)[2].text, "/=");
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("   ");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, BareQuestionMarkErrors) {
  auto tokens = Tokenize("(?, A, B)");
  EXPECT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = Tokenize("(A, B, C)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 1u);
  EXPECT_EQ((*tokens)[3].offset, 4u);
}

}  // namespace
}  // namespace lsd
