// The shipped sample .lsd files must load cleanly and behave as their
// comments promise.
#include <gtest/gtest.h>

#include "core/loose_db.h"

#ifndef LSD_SOURCE_DIR
#define LSD_SOURCE_DIR "."
#endif

namespace lsd {
namespace {

std::string DataPath(const char* name) {
  return std::string(LSD_SOURCE_DIR) + "/data/" + name;
}

TEST(DataFilesTest, MusicLoadsAndBrowses) {
  LooseDb db;
  Status s = db.LoadTextFile(DataPath("music.lsd"));
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto hood = db.Navigate("JOHN");
  ASSERT_TRUE(hood.ok());
  EXPECT_FALSE(hood->classes.empty());
  // The defined operator from the file works.
  auto r = db.Call("composer-of(PC#9-WAM, ?C)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(db.entities().Name(r->rows[0][0]), "MOZART");
}

TEST(DataFilesTest, CampusProbesToThePaperMenu) {
  LooseDb db;
  ASSERT_TRUE(db.LoadTextFile(DataPath("campus.lsd")).ok());
  auto probe = db.Probe("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->original_succeeded);
  EXPECT_EQ(probe->successes.size(), 2u);
}

TEST(DataFilesTest, OrgHasExactlyThePlantedViolation) {
  LooseDb db;
  ASSERT_TRUE(db.LoadTextFile(DataPath("org.lsd")).ok());
  auto violations = db.FindIntegrityViolations();
  ASSERT_TRUE(violations.ok()) << violations.status().ToString();
  ASSERT_EQ(violations->size(), 1u);
  EXPECT_NE(violations->front().description.find("$120000"),
            std::string::npos);
  // Synonym substitution: wages are queryable even though facts say
  // EARNS/SALARY.
  auto r = db.Query("(ADAM, EARNS, ?W) and (?W, IN, WAGE)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Success());
}

}  // namespace
}  // namespace lsd
