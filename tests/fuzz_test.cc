// Robustness fuzzing: random byte soup and mutated valid inputs must
// never crash the parsers or the WAL/snapshot readers — they either
// parse or return a clean Status.
#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "query/parser.h"
#include "store/persistence.h"
#include "store/text_format.h"
#include "util/random.h"

namespace lsd {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out;
  size_t len = rng.Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng.Uniform(256));
  }
  return out;
}

std::string RandomPrintable(Rng& rng, size_t max_len) {
  static const char kChars[] =
      "()?,*ABCXYZ0123456789 \n\t#:=<>/$.-and or exists forall rule "
      "integrity define where @class";
  std::string out;
  size_t len = rng.Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    out += kChars[rng.Uniform(sizeof(kChars) - 1)];
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, QueryParserNeverCrashes) {
  Rng rng(GetParam());
  EntityTable entities;
  for (int i = 0; i < 200; ++i) {
    std::string input =
        rng.Bernoulli(0.5) ? RandomBytes(rng, 80) : RandomPrintable(rng, 80);
    auto q = ParseQuery(input, &entities);
    if (q.ok()) {
      // Whatever parsed must render without crashing.
      (void)q->DebugString(entities);
    }
  }
}

TEST_P(FuzzTest, TextFormatParserNeverCrashes) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 100; ++i) {
    FactStore store;
    std::vector<Rule> rules;
    DefinitionRegistry definitions;
    std::string input =
        rng.Bernoulli(0.5) ? RandomBytes(rng, 200)
                           : RandomPrintable(rng, 200);
    (void)ParseText(input, &store, &rules, &definitions);
  }
}

TEST_P(FuzzTest, MutatedValidDocumentParsesOrErrors) {
  Rng rng(GetParam() + 2000);
  const std::string valid =
      "(JOHN, WORKS-FOR, SHIPPING)\n"
      "@class TOTAL-NUMBER\n"
      "rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)\n"
      "define f(?X) := (?X, IN, EMPLOYEE)\n";
  for (int i = 0; i < 100; ++i) {
    std::string mutated = valid;
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    FactStore store;
    std::vector<Rule> rules;
    DefinitionRegistry definitions;
    (void)ParseText(mutated, &store, &rules, &definitions);
  }
}

TEST_P(FuzzTest, CorruptSnapshotsErrorCleanly) {
  Rng rng(GetParam() + 3000);
  auto dir = std::filesystem::temp_directory_path();
  std::string path =
      (dir / ("lsd_fuzz_" + std::to_string(GetParam()) + ".snap"))
          .string();

  // Build a valid snapshot, then corrupt random bytes / truncate.
  FactStore store;
  store.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  store.Assert("A", "ISA", "B");
  ASSERT_TRUE(SaveSnapshot(path, store, {}).ok());
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(f);
  }
  for (int trial = 0; trial < 30; ++trial) {
    std::string corrupt = bytes;
    if (rng.Bernoulli(0.5) && corrupt.size() > 9) {
      corrupt.resize(9 + rng.Uniform(corrupt.size() - 9));  // truncate
    }
    int flips = static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips && !corrupt.empty(); ++f) {
      corrupt[rng.Uniform(corrupt.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(corrupt.data(), 1, corrupt.size(), f);
    std::fclose(f);

    FactStore loaded;
    std::vector<Rule> rules;
    // Must not crash; any Status outcome is acceptable.
    (void)LoadSnapshot(path, &loaded, &rules);
  }
  std::remove(path.c_str());
}

TEST_P(FuzzTest, CorruptWalsErrorCleanly) {
  Rng rng(GetParam() + 4000);
  auto dir = std::filesystem::temp_directory_path();
  std::string path =
      (dir / ("lsd_fuzz_" + std::to_string(GetParam()) + ".wal"))
          .string();
  const std::string segment = path + ".000001";
  std::remove(segment.c_str());
  {
    FactStore store;
    Fact f1 = store.Assert("A", "R", "B");
    Fact f2 = store.Assert("C", "R", "D");
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
    ASSERT_TRUE(wal.AppendRetract(store, f1).ok());
  }
  std::string bytes;
  {
    std::FILE* f = std::fopen(segment.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, n);
    }
    std::fclose(f);
  }
  for (int trial = 0; trial < 30; ++trial) {
    std::string corrupt = bytes;
    if (rng.Bernoulli(0.6) && corrupt.size() > 8) {
      corrupt.resize(8 + rng.Uniform(corrupt.size() - 8));
    }
    int flips = static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips && !corrupt.empty(); ++f) {
      corrupt[rng.Uniform(corrupt.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    std::FILE* f = std::fopen(segment.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(corrupt.data(), 1, corrupt.size(), f);
    std::fclose(f);

    FactStore store;
    std::vector<Rule> rules;
    // Must not crash; damage is salvaged, never fatal.
    (void)Wal::Replay(path, &store, &rules);
  }
  std::remove(segment.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

}  // namespace
}  // namespace lsd
