// End-to-end tests for the replication subsystem: a durable primary
// shipping its WAL through a LogShipper, a follower SharedStore kept
// converged by a ReplicationClient, and the bounded-staleness contract
// browse sessions enforce on top.
//
// The golden invariant (the acceptance bar): a follower that has
// caught up serves the paper's Sec 5.2 browsing menu BIT-IDENTICALLY
// to its primary — same probe menus, same query tables, same rule
// listings — because it replays the same log through the same commit
// machinery.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replication/log_shipper.h"
#include "replication/monitor.h"
#include "replication/replication_client.h"
#include "server/session.h"
#include "server/shared_store.h"
#include "util/failpoint.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

// The paper's Sec 5.2 browsing menu plus the rest of the read grammar:
// replayed verbatim against primary and follower sessions and compared
// byte for byte.
const char* const kGoldenSuite[] = {
    "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)",
    "query (?S, TAKE, ?C)",
    "query (STUDENT, LOVE, ?Z)",
    "nav STUDENT",
    "assoc TOM HARRY",
    "near STUDENT 2",
    "rules",
    "check",
};

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lsd_repl_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    if (client_ != nullptr) client_->Stop();
    if (shipper_ != nullptr) shipper_->Stop();
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static LogShipperOptions TestShipperOptions() {
    LogShipperOptions options;
    options.heartbeat_ms = 50;  // keep convergence waits short
    return options;
  }

  void StartPrimary(uint64_t checkpoint_bytes = 0,
                    const LogShipperOptions& ship = TestShipperOptions()) {
    primary_ = std::make_unique<SharedStore>();
    SharedStoreDurability durability;
    durability.checkpoint_bytes = checkpoint_bytes;
    Status opened = primary_->OpenDurable(Path("primary"), durability);
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    shipper_ = std::make_unique<LogShipper>(primary_.get(), ship);
    Status started = shipper_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  void StartFollower(const ReplicationBounds& bounds = {}) {
    follower_ = std::make_unique<SharedStore>();
    monitor_ = std::make_unique<ReplicationMonitor>(bounds);
    ReplicationClientOptions options;
    options.port = shipper_->port();
    options.scratch_prefix = Path("scratch");
    options.backoff_base_ms = 20;
    options.backoff_max_ms = 200;
    client_ = std::make_unique<ReplicationClient>(follower_.get(),
                                                  monitor_.get(), options);
    Status started = client_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  // The replica provably equals the primary's published tip.
  bool Converged() {
    const ReplicationStatus s = monitor_->Sample();
    return s.ever_synced && s.lag_bytes == 0 &&
           s.applied_epoch == primary_->snapshot()->sequence();
  }

  bool WaitUntil(const std::function<bool()>& pred,
                 int timeout_ms = 10'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return pred();
  }

  void SeedCampus() {
    auto seeded = primary_->Commit([](LooseDb& db) {
      workload::BuildCampusDomain(&db);
      return Status::OK();
    });
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  }

  // Runs `line` on a fresh single-use session over `store`.
  static StatusOr<std::string> Run(SharedStore* store, std::string_view line,
                                   const ReplicationMonitor* monitor) {
    ServerSession session(1, store);
    if (monitor != nullptr) session.set_replication(monitor);
    return session.Execute(line);
  }

  std::filesystem::path dir_;
  std::unique_ptr<SharedStore> primary_;
  std::unique_ptr<LogShipper> shipper_;
  std::unique_ptr<SharedStore> follower_;
  std::unique_ptr<ReplicationMonitor> monitor_;
  std::unique_ptr<ReplicationClient> client_;
};

TEST_F(ReplicationTest, ColdFollowerCatchesUpAndServesTheMenuBitIdentically) {
  StartPrimary();
  SeedCampus();
  auto rule = primary_->Commit([](LooseDb& db) {
    return db.DefineRule(
        "thrift: (?X, COSTS, FREE) => (?X, IS, AFFORDABLE)");
  });
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();

  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }))
      << "follower never converged";

  for (const char* line : kGoldenSuite) {
    auto on_primary = Run(primary_.get(), line, nullptr);
    auto on_follower = Run(follower_.get(), line, monitor_.get());
    ASSERT_TRUE(on_primary.ok()) << line << ": "
                                 << on_primary.status().ToString();
    ASSERT_TRUE(on_follower.ok()) << line << ": "
                                  << on_follower.status().ToString();
    EXPECT_EQ(*on_primary, *on_follower) << line;
  }
}

TEST_F(ReplicationTest, FollowerTailsLiveCommits) {
  StartPrimary();
  SeedCampus();
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  auto committed = primary_->Commit([](LooseDb& db) {
    db.Assert("FRESH", "ARRIVES", "LIVE");
    return Status::OK();
  });
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  auto result = Run(follower_.get(), "query (FRESH, ARRIVES, ?X)",
                    monitor_.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("LIVE"), std::string::npos);
  EXPECT_GE(monitor_->Sample().chunks_applied, 1u);
  // Applied stamps came from the primary's clock via the chunk frames.
  EXPECT_GT(monitor_->Sample().applied_epoch_ms, 0u);
}

TEST_F(ReplicationTest, FollowerRejectsEveryMutationVerb) {
  StartPrimary();
  SeedCampus();
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  const char* const mutations[] = {
      "assert (A, B, C)",
      "retract (STUDENT, LOVE, ADVANCED-COURSES)",
      "assert* (A, B, C) (D, E, F)",
      "retract* (A, B, C)",
      "rule r1: (?X, A, B) => (?X, C, D)",
      "integrity r2: (?X, A, B) => (?X, C, D)",
      "define pair(?A) := (?A, TAKE, ?C)",
      "include thrift",
      "exclude thrift",
      "load /nonexistent.lsd",
  };
  for (const char* line : mutations) {
    auto result = Run(follower_.get(), line, monitor_.get());
    ASSERT_FALSE(result.ok()) << line;
    EXPECT_NE(result.status().ToString().find("read-only follower"),
              std::string::npos)
        << line << " -> " << result.status().ToString();
  }
  // The binary mutation path hits the same wall.
  ServerSession session(1, follower_.get());
  session.set_replication(monitor_.get());
  auto batch = session.ExecuteBatchMutation("anything");
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().ToString().find("read-only follower"),
            std::string::npos);

  // Session-local verbs stay available: the overlay never commits.
  EXPECT_TRUE(Run(follower_.get(), "ping", monitor_.get()).ok());
  EXPECT_TRUE(
      Run(follower_.get(), "hypo assert (X, Y, Z)", monitor_.get()).ok());
  auto stats = Run(follower_.get(), "stats", monitor_.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("replication:    follower"), std::string::npos);
  EXPECT_NE(stats->find("repl lag:"), std::string::npos);
}

TEST_F(ReplicationTest, StalenessBoundGatesReads) {
  StartPrimary();
  SeedCampus();

  // Bounded but never connected: reads refuse with the stale marker.
  ReplicationBounds bounds;
  bounds.max_lag_ms = 60'000;
  ReplicationMonitor unsynced(bounds);
  auto blocked = Run(primary_.get(), "query (?S, TAKE, ?C)", &unsynced);
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.status().ToString().find("stale:"), std::string::npos);

  // A converged follower under a generous bound serves reads.
  StartFollower(bounds);
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));
  EXPECT_TRUE(
      Run(follower_.get(), "query (?S, TAKE, ?C)", monitor_.get()).ok());

  // Primary silence past grace + bound makes the follower stale: stop
  // shipping and watch the gate close deterministically.
  ReplicationBounds tight;
  tight.max_lag_ms = 50;
  tight.heartbeat_grace_ms = 50;
  ReplicationMonitor tight_monitor(tight);
  const ReplicationStatus synced = monitor_->Sample();
  tight_monitor.RecordFrame(synced.primary_epoch, synced.primary_epoch_ms,
                            0);
  tight_monitor.RecordApplied(synced.primary_epoch,
                              synced.primary_epoch_ms);
  EXPECT_TRUE(tight_monitor.CheckReadable().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Status gate = tight_monitor.CheckReadable();
  ASSERT_FALSE(gate.ok());
  EXPECT_NE(gate.ToString().find("stale:"), std::string::npos);
}

TEST_F(ReplicationTest, ResumesFromOffsetAcrossShipperRestart) {
  StartPrimary();
  SeedCampus();
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  // Take the primary's replication endpoint down, keep committing.
  const uint16_t port = shipper_->port();
  shipper_->Stop();
  shipper_ = nullptr;
  for (int i = 0; i < 5; ++i) {
    auto committed = primary_->Commit([i](LooseDb& db) {
      db.Assert("OFFLINE" + std::to_string(i), "WRITTEN", "WHILE-DOWN");
      return Status::OK();
    });
    ASSERT_TRUE(committed.ok());
  }

  // Bring shipping back on the same port; the follower's backoff loop
  // resubscribes from its last applied offset — no snapshot involved.
  LogShipperOptions options;
  options.port = port;
  options.heartbeat_ms = 50;
  shipper_ = std::make_unique<LogShipper>(primary_.get(), options);
  Status restarted = shipper_->Start();
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();

  ASSERT_TRUE(WaitUntil([&] { return Converged(); }))
      << "follower never re-converged";
  const ReplicationStatus s = monitor_->Sample();
  EXPECT_GE(s.reconnects, 1u);
  EXPECT_EQ(s.snapshots_loaded, 0u) << "resume must not need a snapshot";
  auto result = Run(follower_.get(), "query (OFFLINE4, WRITTEN, ?X)",
                    monitor_.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("WHILE-DOWN"), std::string::npos);
}

TEST_F(ReplicationTest, CheckpointedAwayLogFallsBackToSnapshotCatchUp) {
  // A tiny checkpoint threshold retires the genesis segment almost
  // immediately, so a cold follower cannot replay from offset zero.
  StartPrimary(/*checkpoint_bytes=*/64);
  SeedCampus();
  for (int i = 0; i < 4; ++i) {
    auto committed = primary_->Commit([i](LooseDb& db) {
      db.Assert("CKPT" + std::to_string(i), "FORCES", "ROTATION");
      return Status::OK();
    });
    ASSERT_TRUE(committed.ok());
  }
  const auto inventory = primary_->wal().SegmentInventory();
  ASSERT_FALSE(inventory.empty());
  ASSERT_TRUE(inventory.front().seq > 1 ||
              inventory.front().generation > 0)
      << "checkpoint should have retired the genesis segment";

  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }))
      << "snapshot catch-up never converged";
  EXPECT_GE(monitor_->Sample().snapshots_loaded, 1u);
  auto result =
      Run(follower_.get(), "query (CKPT3, FORCES, ?X)", monitor_.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("ROTATION"), std::string::npos);

  // And the snapshot-derived state still matches the primary verbatim.
  for (const char* line : kGoldenSuite) {
    auto on_primary = Run(primary_.get(), line, nullptr);
    auto on_follower = Run(follower_.get(), line, monitor_.get());
    ASSERT_TRUE(on_primary.ok()) << line;
    ASSERT_TRUE(on_follower.ok()) << line;
    EXPECT_EQ(*on_primary, *on_follower) << line;
  }
}

TEST_F(ReplicationTest, SilentConnectionIsEvictedAtTheHandshakeDeadline) {
  // One slot, short deadline: a peer that connects and never sends its
  // kSubscribe must not pin admission until Stop().
  LogShipperOptions ship = TestShipperOptions();
  ship.max_followers = 1;
  ship.handshake_timeout_ms = 100;
  StartPrimary(/*checkpoint_bytes=*/0, ship);
  SeedCampus();

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(shipper_->port());
  int silent = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent, 0);
  ASSERT_EQ(::connect(silent, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(WaitUntil([&] { return shipper_->followers() == 1; }));

  // The real follower gets "too many followers" until the deadline
  // frees the slot, then subscribes and converges.
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }))
      << "silent peer starved the real follower: "
      << client_->last_error().ToString();
  ::close(silent);
}

#if LSD_FAILPOINTS_ENABLED

TEST_F(ReplicationTest, InjectedApplyFaultReconnectsAndRecovers) {
  StartPrimary();
  SeedCampus();
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  // The next chunk apply fails once; the client must tear down,
  // resubscribe from its last good offset, and land the write anyway.
  failpoint::Policy fail_once;
  fail_once.action = failpoint::Action::kError;
  fail_once.max_fires = 1;
  failpoint::Scoped scoped("repl.client.apply", fail_once);

  auto committed = primary_->Commit([](LooseDb& db) {
    db.Assert("FAULT", "CANNOT-STOP", "REPLICATION");
    return Status::OK();
  });
  ASSERT_TRUE(committed.ok());

  ASSERT_TRUE(WaitUntil([&] {
    auto result = Run(follower_.get(), "query (FAULT, CANNOT-STOP, ?X)",
                      monitor_.get());
    return result.ok() && result->find("REPLICATION") != std::string::npos;
  }));
  EXPECT_GE(monitor_->Sample().reconnects, 1u);
}

TEST_F(ReplicationTest, ReconnectMidRecordResumesFromTheBoundary) {
  // Tiny chunks force every record to span several frames, so the
  // injected failure below lands while the client holds buffered
  // partial-record bytes. The reconnect must drop them and re-anchor
  // its continuity check at the resubscribed boundary — stale parser
  // state would reject the re-sent boundary bytes as a "log stream
  // gap" on every reconnect, a permanent livelock.
  LogShipperOptions ship = TestShipperOptions();
  ship.chunk_bytes = 16;
  StartPrimary(/*checkpoint_bytes=*/0, ship);
  SeedCampus();
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  // Let the first 16-byte sliver of the next record through, then
  // fail: the connection dies mid-record, with bytes buffered.
  failpoint::Policy fail_second;
  fail_second.action = failpoint::Action::kError;
  fail_second.skip = 1;
  fail_second.max_fires = 1;
  failpoint::Scoped scoped("repl.client.apply", fail_second);

  auto committed = primary_->Commit([](LooseDb& db) {
    db.Assert("A-RECORD-LONGER-THAN-ONE-CHUNK", "MUST-SURVIVE",
              "A-MID-RECORD-DISCONNECT");
    return Status::OK();
  });
  ASSERT_TRUE(committed.ok());

  ASSERT_TRUE(WaitUntil([&] { return Converged(); }))
      << "client wedged after a mid-record disconnect: "
      << client_->last_error().ToString();
  EXPECT_GE(monitor_->Sample().reconnects, 1u);
  auto result = Run(follower_.get(),
                    "query (A-RECORD-LONGER-THAN-ONE-CHUNK, MUST-SURVIVE, ?X)",
                    monitor_.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("A-MID-RECORD-DISCONNECT"), std::string::npos);
}

TEST_F(ReplicationTest, InjectedSendFaultsOnlyDelayTheSubscription) {
  StartPrimary();
  SeedCampus();

  failpoint::Policy fail_twice;
  fail_twice.action = failpoint::Action::kError;
  fail_twice.max_fires = 2;
  failpoint::Scoped scoped("repl.client.send", fail_twice);

  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }))
      << "client should retry past injected subscribe failures";
}

TEST_F(ReplicationTest, ShipperSendFaultDropsFollowerWhoReconnects) {
  StartPrimary();
  SeedCampus();
  StartFollower();
  ASSERT_TRUE(WaitUntil([&] { return Converged(); }));

  {
    failpoint::Policy fail_once;
    fail_once.action = failpoint::Action::kError;
    fail_once.max_fires = 1;
    failpoint::Scoped scoped("repl.ship.send", fail_once);
    auto committed = primary_->Commit([](LooseDb& db) {
      db.Assert("SHIP", "FAULTS", "TOO");
      return Status::OK();
    });
    ASSERT_TRUE(committed.ok());
    ASSERT_TRUE(WaitUntil([&] {
      auto result =
          Run(follower_.get(), "query (SHIP, FAULTS, ?X)", monitor_.get());
      return result.ok() && result->find("TOO") != std::string::npos;
    }));
  }
  EXPECT_GE(monitor_->Sample().reconnects, 1u);
}

#endif  // LSD_FAILPOINTS_ENABLED

}  // namespace
}  // namespace lsd
