#include "rules/contradiction.h"

#include <gtest/gtest.h>

#include "rules/builtin_rules.h"
#include "rules/rule_engine.h"

namespace lsd {
namespace {

class ContradictionTest : public ::testing::Test {
 protected:
  ContradictionTest()
      : math_(&store_.entities()), engine_(&store_, &math_) {
    for (const Fact& f : StandardSeedFacts()) store_.Assert(f);
  }

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  std::unique_ptr<Closure> Close(std::vector<Rule> extra = {}) {
    std::vector<Rule> rules = StandardRules();
    for (Rule& r : extra) rules.push_back(std::move(r));
    auto c = engine_.ComputeClosure(rules);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(*c);
  }

  FactStore store_;
  MathProvider math_;
  RuleEngine engine_;
};

TEST_F(ContradictionTest, CleanDatabasePasses) {
  store_.Assert("JOHN", "LOVES", "MARY");
  store_.Assert("LOVES", "CONTRA", "HATES");
  auto c = Close();
  EXPECT_TRUE(CheckIntegrity(c->view()).ok());
  EXPECT_TRUE(FindViolations(c->view()).empty());
}

TEST_F(ContradictionTest, DeclaredContradictionDetected) {
  store_.Assert("JOHN", "LOVES", "MARY");
  store_.Assert("JOHN", "HATES", "MARY");
  store_.Assert("LOVES", "CONTRA", "HATES");
  auto c = Close();
  auto violations = FindViolations(c->view());
  ASSERT_EQ(violations.size(), 1u);  // the unordered pair reported once
  Status s = CheckIntegrity(c->view());
  EXPECT_TRUE(s.IsIntegrityViolation());
  EXPECT_NE(s.message().find("contradictory"), std::string::npos);
}

TEST_F(ContradictionTest, ContradictionViaInferredFact) {
  // The contradicting fact arrives by inference, not assertion: Felix
  // adores Mary, ADORES ≺ LOVES, and Felix hates Mary.
  store_.Assert("FELIX", "ADORES", "MARY");
  store_.Assert("ADORES", "ISA", "LOVES");
  store_.Assert("FELIX", "HATES", "MARY");
  store_.Assert("LOVES", "CONTRA", "HATES");
  auto c = Close();
  EXPECT_FALSE(FindViolations(c->view()).empty());
}

TEST_F(ContradictionTest, FalseAssertedComparisonDetected) {
  store_.Assert("5", ">", "8");  // arithmetic disagrees
  auto c = Close();
  auto violations = FindViolations(c->view());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].description.find("arithmetic"),
            std::string::npos);
}

TEST_F(ContradictionTest, TrueAssertedComparisonPasses) {
  store_.Assert("8", ">", "5");
  auto c = Close();
  EXPECT_TRUE(FindViolations(c->view()).empty());
}

TEST_F(ContradictionTest, UndecidableComparisonNotFlagged) {
  // Symbolic operand: the provider cannot decide, so no violation.
  store_.Assert("JOHNS-AGE", ">", "0");
  auto c = Close();
  EXPECT_TRUE(FindViolations(c->view()).empty());
}

// Sec 2.5's integrity-as-inference: a rule head that derives a false
// comparison is caught.
TEST_F(ContradictionTest, IntegrityRuleViolationSurfacesAsContradiction) {
  store_.Assert("EMP", "MANAGER", "BOSS");
  store_.Assert("EMP", "EARNS", "50000");
  store_.Assert("BOSS", "EARNS", "40000");
  RuleBuilder b("salary-cap");
  Term x = b.Var("X"), m = b.Var("M"), u = b.Var("U"), v = b.Var("V");
  b.SetKind(RuleKind::kIntegrity)
      .Body(x, Term::Entity(E("MANAGER")), m)
      .Body(x, Term::Entity(E("EARNS")), u)
      .Body(m, Term::Entity(E("EARNS")), v)
      .Head(v, Term::Entity(kEntGreaterEq), u);
  std::vector<Rule> extra;
  extra.push_back(std::move(b).Build());
  auto c = Close(std::move(extra));
  auto violations = FindViolations(c->view());
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].description.find("arithmetic"),
            std::string::npos);
}

TEST_F(ContradictionTest, SatisfiedIntegrityRulePasses) {
  store_.Assert("EMP", "MANAGER", "BOSS");
  store_.Assert("EMP", "EARNS", "50000");
  store_.Assert("BOSS", "EARNS", "60000");
  RuleBuilder b("salary-cap");
  Term x = b.Var("X"), m = b.Var("M"), u = b.Var("U"), v = b.Var("V");
  b.SetKind(RuleKind::kIntegrity)
      .Body(x, Term::Entity(E("MANAGER")), m)
      .Body(x, Term::Entity(E("EARNS")), u)
      .Body(m, Term::Entity(E("EARNS")), v)
      .Head(v, Term::Entity(kEntGreaterEq), u);
  std::vector<Rule> extra;
  extra.push_back(std::move(b).Build());
  auto c = Close(std::move(extra));
  EXPECT_TRUE(FindViolations(c->view()).empty());
}

}  // namespace
}  // namespace lsd
