// Verifies every standard inference rule of Section 3 on the paper's own
// examples.
#include "rules/builtin_rules.h"

#include <gtest/gtest.h>

#include "rules/rule_engine.h"

namespace lsd {
namespace {

class BuiltinRulesTest : public ::testing::Test {
 protected:
  BuiltinRulesTest()
      : math_(&store_.entities()), engine_(&store_, &math_) {
    for (const Fact& f : StandardSeedFacts()) store_.Assert(f);
    rules_ = StandardRules();
  }

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  void Assert(const char* s, const char* r, const char* t) {
    store_.Assert(s, r, t);
  }

  std::unique_ptr<Closure> Close() {
    auto c = engine_.ComputeClosure(rules_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return std::move(*c);
  }

  bool Holds(const Closure& c, const char* s, const char* r,
             const char* t) {
    return c.view().Contains(Fact(E(s), E(r), E(t)));
  }

  FactStore store_;
  MathProvider math_;
  RuleEngine engine_;
  std::vector<Rule> rules_;
};

// Sec 3.1 rule (1a): (MANAGER ≺ EMPLOYEE) inherits WORKS-FOR.
TEST_F(BuiltinRulesTest, GeneralizationSourcePosition) {
  Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  Assert("MANAGER", "ISA", "EMPLOYEE");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "MANAGER", "WORKS-FOR", "DEPARTMENT"));
}

// Sec 3.1 rule (1b): WORKS-FOR ≺ IS-PAID-BY lifts John's fact.
TEST_F(BuiltinRulesTest, GeneralizationRelationshipPosition) {
  Assert("JOHN", "WORKS-FOR", "SHIPPING");
  Assert("WORKS-FOR", "ISA", "IS-PAID-BY");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHN", "IS-PAID-BY", "SHIPPING"));
}

// Sec 3.1 rule (1c): SALARY ≺ COMPENSATION lifts the target.
TEST_F(BuiltinRulesTest, GeneralizationTargetPosition) {
  Assert("EMPLOYEE", "EARNS", "SALARY");
  Assert("SALARY", "ISA", "COMPENSATION");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "EMPLOYEE", "EARNS", "COMPENSATION"));
}

// Sec 3.1: transitivity of ≺ falls out of rule (1) with r = ≺.
TEST_F(BuiltinRulesTest, GeneralizationIsTransitive) {
  Assert("QUARTERBACK", "ISA", "FOOTBALL-PLAYER");
  Assert("FOOTBALL-PLAYER", "ISA", "ATHLETE");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "QUARTERBACK", "ISA", "ATHLETE"));
}

// Sec 2.3: reflexivity, top and bottom are axiomatic in the view.
TEST_F(BuiltinRulesTest, GeneralizationAxioms) {
  Assert("JOHN", "IN", "EMPLOYEE");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHN", "ISA", "JOHN"));
  EXPECT_TRUE(Holds(*c, "JOHN", "ISA", "ANY"));
  EXPECT_TRUE(Holds(*c, "NONE", "ISA", "JOHN"));
}

// Sec 3.2 rule (2a): John inherits EMPLOYEE's individual relationships.
TEST_F(BuiltinRulesTest, MembershipSourcePosition) {
  Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  Assert("JOHN", "IN", "EMPLOYEE");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHN", "WORKS-FOR", "DEPARTMENT"));
}

// Sec 3.2 rule (2b): Tom works for SHIPPING, a department.
TEST_F(BuiltinRulesTest, MembershipTargetPosition) {
  Assert("TOM", "WORKS-FOR", "SHIPPING");
  Assert("SHIPPING", "IN", "DEPARTMENT");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "TOM", "WORKS-FOR", "DEPARTMENT"));
}

// Sec 3.2 corollary: an instance of an entity is an instance of every
// more general entity.
TEST_F(BuiltinRulesTest, MembershipPropagatesUpGeneralization) {
  Assert("JOHN", "IN", "EMPLOYEE");
  Assert("EMPLOYEE", "ISA", "PERSON");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHN", "IN", "PERSON"));
}

// Sec 2.2: class relationships do NOT distribute over members.
TEST_F(BuiltinRulesTest, ClassRelationshipsDoNotDistribute) {
  Assert("EMPLOYEE", "TOTAL-NUMBER", "180");
  store_.MarkClassRelationship(E("TOTAL-NUMBER"));
  Assert("JOHN", "IN", "EMPLOYEE");
  auto c = Close();
  EXPECT_FALSE(Holds(*c, "JOHN", "TOTAL-NUMBER", "180"));
}

// Sec 3.3: synonyms imply mutual generalization...
TEST_F(BuiltinRulesTest, SynonymImpliesMutualIsa) {
  Assert("SALARY", "SYN", "WAGE");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "SALARY", "ISA", "WAGE"));
  EXPECT_TRUE(Holds(*c, "WAGE", "ISA", "SALARY"));
}

// ...and mutual generalization implies synonymy (the definition), which
// gives symmetry.
TEST_F(BuiltinRulesTest, SynonymIsSymmetric) {
  Assert("JOHN", "SYN", "JOHNNY");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHNNY", "SYN", "JOHN"));
}

// Sec 3.3: (WAGE ≈ PAY) inferred from (SALARY ≈ WAGE), (SALARY ≈ PAY).
TEST_F(BuiltinRulesTest, SynonymIsTransitiveThroughSharedName) {
  Assert("SALARY", "SYN", "WAGE");
  Assert("SALARY", "SYN", "PAY");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "WAGE", "SYN", "PAY"));
}

// Sec 3.3: "r may be replaced with r' in every fact".
TEST_F(BuiltinRulesTest, SynonymSubstitutesEverywhere) {
  Assert("JOHN", "EARNS", "$25000");
  Assert("JOHN", "SYN", "JOHNNY");
  Assert("EARNS", "SYN", "GETS-PAID");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHNNY", "EARNS", "$25000"));
  EXPECT_TRUE(Holds(*c, "JOHN", "GETS-PAID", "$25000"));
  EXPECT_TRUE(Holds(*c, "JOHNNY", "GETS-PAID", "$25000"));
}

// A specialization of a synonym is not a synonym (SYN is a class
// relationship; see fact_store.cc).
TEST_F(BuiltinRulesTest, SynonymyIsNotInherited) {
  Assert("SALARY", "SYN", "WAGE");
  Assert("BONUS", "ISA", "SALARY");
  auto c = Close();
  EXPECT_FALSE(Holds(*c, "BONUS", "SYN", "WAGE"));
}

// Sec 3.4: inversion swaps source and target.
TEST_F(BuiltinRulesTest, InversionDerivesSwappedFact) {
  Assert("INSTRUCTOR", "TEACHES", "COURSE");
  Assert("TEACHES", "INV", "TAUGHT-BY");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "COURSE", "TAUGHT-BY", "INSTRUCTOR"));
}

// Sec 3.4: because (INV, INV, INV) is seeded, inversion facts come in
// pairs, so the inverse direction also works.
TEST_F(BuiltinRulesTest, InversionFactsComeInPairs) {
  Assert("TEACHES", "INV", "TAUGHT-BY");
  Assert("COURSE", "TAUGHT-BY", "INSTRUCTOR");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "TAUGHT-BY", "INV", "TEACHES"));
  EXPECT_TRUE(Holds(*c, "INSTRUCTOR", "TEACHES", "COURSE"));
}

// Sec 3.5: contradiction facts come in pairs too ((CONTRA, INV, CONTRA)).
TEST_F(BuiltinRulesTest, ContradictionFactsComeInPairs) {
  Assert("LOVES", "CONTRA", "HATES");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "HATES", "CONTRA", "LOVES"));
}

// Rules can be disabled (Sec 6.1 exclude()).
TEST_F(BuiltinRulesTest, DisabledRuleDoesNotFire) {
  Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  Assert("JOHN", "IN", "EMPLOYEE");
  for (Rule& r : rules_) {
    if (r.name == kRuleMemSource) r.enabled = false;
  }
  auto c = Close();
  EXPECT_FALSE(Holds(*c, "JOHN", "WORKS-FOR", "DEPARTMENT"));
}

// Documents a soundness glitch in the paper's own rule system: inverting
// a class-level fact and re-instantiating it over members derives
// relationships between every member/instance pair, losing the footnote
// semantics "every employee works for at least ONE department". The
// formal rules license this chain:
//   (EMPLOYEE, WORKS-FOR, DEPARTMENT), (WORKS-FOR, INV, EMPLOYS)
//     => (DEPARTMENT, EMPLOYS, EMPLOYEE)          [inversion]
//   (DEPT-1, IN, DEPARTMENT) => (DEPT-1, EMPLOYS, EMPLOYEE)   [2a]
//     => (EMPLOYEE, WORKS-FOR, DEPT-1)            [inversion]
//   (EMP-2, IN, EMPLOYEE) => (EMP-2, WORKS-FOR, DEPT-1)       [2a]
// even though EMP-2 was only asserted to work for DEPT-2.
TEST_F(BuiltinRulesTest, ClassLevelInversionOverspecializes) {
  Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  Assert("WORKS-FOR", "INV", "EMPLOYS");
  Assert("DEPT-1", "IN", "DEPARTMENT");
  Assert("DEPT-2", "IN", "DEPARTMENT");
  Assert("EMP-2", "IN", "EMPLOYEE");
  Assert("EMP-2", "WORKS-FOR", "DEPT-2");
  auto c = Close();
  // The paper's rules really do derive the cross pair.
  EXPECT_TRUE(Holds(*c, "EMP-2", "WORKS-FOR", "DEPT-1"));
}

// The combined Sec 3.1 narrative: John works for shipping, work implies
// pay, so John is paid by shipping.
TEST_F(BuiltinRulesTest, PaperNarrativeChain) {
  Assert("JOHN", "WORKS-FOR", "SHIPPING");
  Assert("WORKS-FOR", "ISA", "IS-PAID-BY");
  Assert("MANAGER", "ISA", "EMPLOYEE");
  Assert("EMPLOYEE", "EARNS", "SALARY");
  Assert("SALARY", "ISA", "COMPENSATION");
  auto c = Close();
  EXPECT_TRUE(Holds(*c, "JOHN", "IS-PAID-BY", "SHIPPING"));
  EXPECT_TRUE(Holds(*c, "MANAGER", "EARNS", "COMPENSATION"));
}

}  // namespace
}  // namespace lsd
