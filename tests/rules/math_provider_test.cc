#include "rules/math_provider.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

class MathProviderTest : public ::testing::Test {
 protected:
  MathProviderTest() : math_(&entities_) {}

  EntityId E(const char* name) { return entities_.Intern(name); }

  EntityTable entities_;
  MathProvider math_;
};

TEST_F(MathProviderTest, NumericOrdering) {
  EntityId a = E("25000"), b = E("20000");
  EXPECT_TRUE(math_.Holds(Fact(a, kEntGreater, b)));
  EXPECT_FALSE(math_.Holds(Fact(a, kEntLess, b)));
  EXPECT_TRUE(math_.Holds(Fact(b, kEntLess, a)));
  EXPECT_TRUE(math_.Holds(Fact(a, kEntGreaterEq, b)));
  EXPECT_FALSE(math_.Holds(Fact(a, kEntLessEq, b)));
}

TEST_F(MathProviderTest, ExactlyOneOfLessGreaterForDistinctNumbers) {
  EntityId a = E("2"), b = E("2.6");
  EXPECT_NE(math_.Holds(Fact(a, kEntLess, b)),
            math_.Holds(Fact(a, kEntGreater, b)));
}

TEST_F(MathProviderTest, EqualityOnIdentityAndNumericTwins) {
  EntityId john = E("JOHN"), mary = E("MARY");
  EXPECT_TRUE(math_.Holds(Fact(john, kEntEq, john)));
  EXPECT_FALSE(math_.Holds(Fact(john, kEntEq, mary)));
  EXPECT_TRUE(math_.Holds(Fact(john, kEntNeq, mary)));
  // The paper writes salaries as $25000; they compare equal to 25000.
  EXPECT_TRUE(math_.Holds(Fact(E("$25000"), kEntEq, E("25000"))));
  EXPECT_TRUE(math_.Holds(Fact(E("$25000"), kEntGreaterEq, E("25000"))));
}

TEST_F(MathProviderTest, ExactlyOneOfEqNeqForEveryPair) {
  EntityId ids[] = {E("JOHN"), E("25000"), E("$25000"), E("MARY")};
  for (EntityId a : ids) {
    for (EntityId b : ids) {
      EXPECT_NE(math_.Holds(Fact(a, kEntEq, b)),
                math_.Holds(Fact(a, kEntNeq, b)));
    }
  }
}

TEST_F(MathProviderTest, OrderingUndefinedForSymbolicEntities) {
  EntityId john = E("JOHN"), n = E("5");
  EXPECT_FALSE(math_.Holds(Fact(john, kEntLess, n)));
  EXPECT_FALSE(math_.Holds(Fact(john, kEntGreater, n)));
  EXPECT_FALSE(math_.Holds(Fact(n, kEntLess, john)));
}

TEST_F(MathProviderTest, NonComparatorNeverHolds) {
  EntityId john = E("JOHN");
  EXPECT_FALSE(math_.Holds(Fact(john, kEntIsa, john)));
  EXPECT_FALSE(MathProvider::IsComparator(kEntIsa));
  EXPECT_TRUE(MathProvider::IsComparator(kEntLessEq));
}

TEST_F(MathProviderTest, EnumerationWithBothBound) {
  EntityId a = E("3"), b = E("7");
  std::vector<Fact> got;
  math_.ForEach(Pattern(a, kEntLess, b), [&](const Fact& f) {
    got.push_back(f);
    return true;
  });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Fact(a, kEntLess, b));
  got.clear();
  math_.ForEach(Pattern(b, kEntLess, a), [&](const Fact& f) {
    got.push_back(f);
    return true;
  });
  EXPECT_TRUE(got.empty());
}

TEST_F(MathProviderTest, EnumerationWithOneBoundSweepsNumbers) {
  E("1");
  E("5");
  E("10");
  EntityId n5 = *entities_.Lookup("5");
  std::vector<EntityId> smaller;
  math_.ForEach(Pattern(kAnyEntity, kEntLess, n5), [&](const Fact& f) {
    smaller.push_back(f.source);
    return true;
  });
  ASSERT_EQ(smaller.size(), 1u);
  EXPECT_EQ(smaller[0], *entities_.Lookup("1"));
}

TEST_F(MathProviderTest, EnumerabilityRules) {
  EntityId a = E("3");
  EXPECT_TRUE(math_.Enumerable(Pattern(a, kEntLess, a)));
  EXPECT_TRUE(math_.Enumerable(Pattern(a, kEntLess, kAnyEntity)));
  EXPECT_FALSE(
      math_.Enumerable(Pattern(kAnyEntity, kEntLess, kAnyEntity)));
  // Unbound relationship: silently empty, hence enumerable.
  EXPECT_TRUE(math_.Enumerable(Pattern(a, kAnyEntity, a)));
}

TEST_F(MathProviderTest, UnboundRelationshipProducesNothing) {
  EntityId a = E("3");
  int count = 0;
  math_.ForEach(Pattern(a, kAnyEntity, kAnyEntity), [&](const Fact&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST_F(MathProviderTest, BuiltinContradictionPairs) {
  EXPECT_TRUE(MathProvider::Contradictory(kEntLess, kEntGreater));
  EXPECT_TRUE(MathProvider::Contradictory(kEntGreater, kEntLess));
  EXPECT_TRUE(MathProvider::Contradictory(kEntEq, kEntNeq));
  EXPECT_TRUE(MathProvider::Contradictory(kEntLess, kEntEq));
  EXPECT_FALSE(MathProvider::Contradictory(kEntLessEq, kEntGreaterEq));
  EXPECT_FALSE(MathProvider::Contradictory(kEntLess, kEntLessEq));
}

}  // namespace
}  // namespace lsd
