#include "rules/composition.h"

#include <gtest/gtest.h>

#include "rules/closure_view.h"

namespace lsd {
namespace {

class CompositionTest : public ::testing::Test {
 protected:
  CompositionTest()
      : math_(&store_.entities()), view_(&store_, nullptr, &math_),
        composer_(&store_.entities()) {}

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  FactStore store_;
  MathProvider math_;
  ClosureView view_;
  CompositionEngine composer_;
};

// Sec 3.7's example: Tom's instructor, by way of CS100.
TEST_F(CompositionTest, PaperExample) {
  store_.Assert("TOM", "ENROLLED-IN", "CS100");
  store_.Assert("CS100", "TAUGHT-BY", "HARRY");
  CompositionOptions options;
  options.limit = 2;
  auto paths = composer_.PathsBetween(view_, E("TOM"), E("HARRY"), options);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  const ComposedFact& cf = (*paths)[0];
  EXPECT_EQ(store_.entities().Name(cf.fact.relationship),
            "ENROLLED-IN.CS100.TAUGHT-BY");
  EXPECT_EQ(cf.fact.source, E("TOM"));
  EXPECT_EQ(cf.fact.target, E("HARRY"));
  ASSERT_EQ(cf.chain.size(), 2u);
  EXPECT_EQ(store_.entities().Kind(cf.fact.relationship),
            EntityKind::kComposed);
}

TEST_F(CompositionTest, LimitOneDisablesComposition) {
  store_.Assert("A", "R1", "B");
  store_.Assert("B", "R2", "C");
  CompositionOptions options;
  options.limit = 1;  // Sec 6.1: n = 1 disables composition altogether
  auto paths = composer_.PathsBetween(view_, E("A"), E("C"), options);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());
}

TEST_F(CompositionTest, LimitBoundsChainLength) {
  store_.Assert("A", "R", "B");
  store_.Assert("B", "R", "C");
  store_.Assert("C", "R", "D");
  CompositionOptions options;
  options.limit = 2;
  auto paths = composer_.PathsBetween(view_, E("A"), E("D"), options);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());  // A->D needs 3 links
  options.limit = 3;
  paths = composer_.PathsBetween(view_, E("A"), E("D"), options);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ((*paths)[0].chain.size(), 3u);
}

// Sec 3.7: cyclic compositions are avoided; a 2-cycle produces no
// endless paths and no s==t compositions.
TEST_F(CompositionTest, TwoCycleProducesNoComposition) {
  store_.Assert("JOHN", "LOVES", "MARY");
  store_.Assert("MARY", "LOVES", "JOHN");
  CompositionOptions options;
  options.limit = 6;
  auto paths = composer_.PathsBetween(view_, E("JOHN"), E("MARY"), options);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());  // only the direct fact relates them
}

// Simple-path strengthening: a 3-cycle yields finitely many paths even
// with a generous limit.
TEST_F(CompositionTest, ThreeCycleStaysFinite) {
  store_.Assert("A", "R", "B");
  store_.Assert("B", "R", "C");
  store_.Assert("C", "R", "A");
  CompositionOptions options;
  options.limit = 10;
  auto paths = composer_.PathsBetween(view_, E("A"), E("C"), options);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);  // A->B->C only: A may not repeat
  EXPECT_EQ((*paths)[0].chain.size(), 2u);
}

TEST_F(CompositionTest, MultiplePathsAllFound) {
  store_.Assert("JOHN", "FAVORITE-MUSIC", "PC9");
  store_.Assert("PC9", "COMPOSED-BY", "MOZART");
  store_.Assert("JOHN", "ADMIRES", "LEOPOLD");
  store_.Assert("LEOPOLD", "FATHER-OF", "MOZART");
  CompositionOptions options;
  options.limit = 3;
  auto paths = composer_.PathsBetween(view_, E("JOHN"), E("MOZART"),
                                      options);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);
}

TEST_F(CompositionTest, MetaRelationshipsExcludedByDefault) {
  store_.Assert("A", "ISA", "B");
  store_.Assert("B", "R", "C");
  CompositionOptions options;
  options.limit = 3;
  auto paths = composer_.PathsBetween(view_, E("A"), E("C"), options);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());
  options.include_meta_relationships = true;
  paths = composer_.PathsBetween(view_, E("A"), E("C"), options);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 1u);
}

TEST_F(CompositionTest, MaterializeAllCountsGrowWithLimit) {
  // A small chain: facts A0->A1->A2->A3.
  for (int i = 0; i < 3; ++i) {
    store_.Assert(("A" + std::to_string(i)).c_str(), "R",
                  ("A" + std::to_string(i + 1)).c_str());
  }
  CompositionOptions options;
  options.limit = 2;
  auto two = composer_.MaterializeAll(view_, options);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->size(), 2u);  // A0A1A2, A1A2A3
  options.limit = 4;
  auto four = composer_.MaterializeAll(view_, options);
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(four->size(), 3u);  // + A0..A3 (len 3); len-4 impossible
}

TEST_F(CompositionTest, MaterializeAllRespectsMaxResults) {
  // A dense bipartite-ish graph generates many paths.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      store_.Assert(("L" + std::to_string(i)).c_str(), "R",
                    ("M" + std::to_string(j)).c_str());
      store_.Assert(("M" + std::to_string(j)).c_str(), "R",
                    ("N" + std::to_string(i)).c_str());
    }
  }
  CompositionOptions options;
  options.limit = 3;
  options.max_results = 10;
  auto r = composer_.MaterializeAll(view_, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(CompositionTest, ComposedNamesNestCorrectly) {
  store_.Assert("A", "R1", "B");
  store_.Assert("B", "R2", "C");
  store_.Assert("C", "R3", "D");
  CompositionOptions options;
  options.limit = 3;
  auto paths = composer_.PathsBetween(view_, E("A"), E("D"), options);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ(store_.entities().Name((*paths)[0].fact.relationship),
            "R1.B.R2.C.R3");
}

TEST_F(CompositionTest, ComposedRelationshipsDoNotRecompose) {
  store_.Assert("A", "R1", "B");
  store_.Assert("B", "R2", "C");
  // Mint the composed fact and *store* it, as if materialized.
  CompositionOptions options;
  options.limit = 2;
  auto paths = composer_.PathsBetween(view_, E("A"), E("C"), options);
  ASSERT_TRUE(paths.ok());
  store_.Assert((*paths)[0].fact);
  store_.Assert("C", "R3", "D");
  options.limit = 4;
  auto more = composer_.PathsBetween(view_, E("A"), E("D"), options);
  ASSERT_TRUE(more.ok());
  // Only the elementary chain A->B->C->D; the stored composed fact is
  // not used as a link.
  ASSERT_EQ(more->size(), 1u);
  EXPECT_EQ((*more)[0].chain.size(), 3u);
}

}  // namespace
}  // namespace lsd
