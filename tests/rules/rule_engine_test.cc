#include "rules/rule_engine.h"

#include <gtest/gtest.h>

#include "rules/builtin_rules.h"
#include "workload/random_graph.h"

namespace lsd {
namespace {

class RuleEngineTest : public ::testing::Test {
 protected:
  RuleEngineTest() : math_(&store_.entities()), engine_(&store_, &math_) {}

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  FactStore store_;
  MathProvider math_;
  RuleEngine engine_;
};

TEST_F(RuleEngineTest, EmptyRulesYieldEmptyDerived) {
  store_.Assert("A", "R", "B");
  auto c = engine_.ComputeClosure({});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->derived().size(), 0u);
  EXPECT_TRUE((*c)->view().Contains(Fact(E("A"), E("R"), E("B"))));
}

TEST_F(RuleEngineTest, UserRuleFires) {
  store_.Assert("JOHN", "IN", "EMPLOYEE");
  RuleBuilder b("pay");
  Term x = b.Var("X");
  b.Body(x, Term::Entity(kEntIn), Term::Entity(E("EMPLOYEE")))
      .Head(x, Term::Entity(E("EARNS")), Term::Entity(E("SALARY")));
  auto c = engine_.ComputeClosure({std::move(b).Build()});
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(
      (*c)->view().Contains(Fact(E("JOHN"), E("EARNS"), E("SALARY"))));
  EXPECT_EQ((*c)->derived().size(), 1u);
}

TEST_F(RuleEngineTest, MultiHeadRule) {
  store_.Assert("A", "SYN", "B");
  RuleBuilder b("syn2");
  Term s = b.Var("S"), t = b.Var("T");
  b.Body(s, Term::Entity(kEntSyn), t)
      .Head(s, Term::Entity(kEntIsa), t)
      .Head(t, Term::Entity(kEntIsa), s);
  auto c = engine_.ComputeClosure({std::move(b).Build()});
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE((*c)->view().Contains(Fact(E("A"), kEntIsa, E("B"))));
  EXPECT_TRUE((*c)->view().Contains(Fact(E("B"), kEntIsa, E("A"))));
}

TEST_F(RuleEngineTest, InvalidRuleRejected) {
  Rule bad;
  bad.name = "bad";
  bad.body.emplace_back(Term::Var(0), Term::Var(1), Term::Var(2));
  // Head uses a variable absent from the body.
  bad.head.emplace_back(Term::Var(3), Term::Var(1), Term::Var(2));
  bad.var_names = {"A", "B", "C", "D"};
  bad.var_constraints.assign(4, VarConstraint::kNone);
  auto c = engine_.ComputeClosure({bad});
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RuleEngineTest, MaxDerivedGuardTrips) {
  // Transitive closure of a long chain exceeds a tiny budget.
  for (int i = 0; i < 50; ++i) {
    store_.Assert(("N" + std::to_string(i)).c_str(), "ISA",
                  ("N" + std::to_string(i + 1)).c_str());
  }
  ClosureOptions options;
  options.max_derived_facts = 10;
  auto c = engine_.ComputeClosure(StandardRules(), options);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kOutOfRange);
}

TEST_F(RuleEngineTest, DerivedComparisonTrueVirtuallyIsNotStored) {
  store_.Assert("X", "IN", "POSITIVE");
  store_.Assert("5", "IN", "POSITIVE");
  RuleBuilder b("pos");
  Term x = b.Var("X");
  b.Body(x, Term::Entity(kEntIn), Term::Entity(E("POSITIVE")))
      .Head(x, Term::Entity(kEntGreater), Term::Entity(E("0")));
  auto c = engine_.ComputeClosure({std::move(b).Build()});
  ASSERT_TRUE(c.ok());
  // (5, >, 0) already holds virtually: not stored. (X, >, 0) is not
  // decidable, so it is stored as a derived fact.
  EXPECT_FALSE((*c)->derived().Contains(Fact(E("5"), kEntGreater, E("0"))));
  EXPECT_TRUE((*c)->derived().Contains(Fact(E("X"), kEntGreater, E("0"))));
  // Both are facts of the closure view.
  EXPECT_TRUE((*c)->view().Contains(Fact(E("5"), kEntGreater, E("0"))));
}

TEST_F(RuleEngineTest, StatsReportRoundsAndDerived) {
  store_.Assert("A", "ISA", "B");
  store_.Assert("B", "ISA", "C");
  store_.Assert("C", "ISA", "D");
  auto c = engine_.ComputeClosure(StandardRules());
  ASSERT_TRUE(c.ok());
  EXPECT_GT((*c)->stats().rounds, 1u);
  EXPECT_GE((*c)->stats().derived_facts, 3u);  // A≺C, A≺D, B≺D, synonyms?
  EXPECT_GT((*c)->stats().candidate_facts, (*c)->stats().derived_facts);
}

// Property: the closure is a fixpoint — re-running the rules over
// base ∪ derived derives nothing new.
TEST_F(RuleEngineTest, ClosureIsIdempotent) {
  store_.Assert("A", "ISA", "B");
  store_.Assert("B", "ISA", "C");
  store_.Assert("M", "IN", "A");
  store_.Assert("A", "NEEDS", "X");
  store_.Assert("NEEDS", "INV", "NEEDED-BY");
  store_.Assert("A", "SYN", "ALPHA");
  auto first = engine_.ComputeClosure(StandardRules());
  ASSERT_TRUE(first.ok());
  ASSERT_GT((*first)->derived().size(), 0u);

  FactStore flattened;
  // Rebuild base ∪ derived as asserted facts (ids transfer: same table
  // would be needed, so re-intern by name).
  auto copy = [&](const Fact& f) {
    flattened.Assert(store_.entities().Name(f.source),
                     store_.entities().Name(f.relationship),
                     store_.entities().Name(f.target));
    return true;
  };
  store_.base().ForEach(Pattern(), copy);
  (*first)->derived().ForEach(Pattern(), copy);

  MathProvider math2(&flattened.entities());
  RuleEngine engine2(&flattened, &math2);
  auto second = engine2.ComputeClosure(StandardRules());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*second)->derived().size(), 0u);
}

// Property: semi-naive and naive strategies produce identical closures
// on random taxonomies of varying shape.
class StrategyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StrategyEquivalenceTest, SemiNaiveEqualsNaive) {
  auto [depth, fanout] = GetParam();
  LooseDb db;  // convenient builder; we use its store directly
  workload::TaxonomyOptions tax;
  tax.depth = depth;
  tax.fanout = fanout;
  workload::BuildRandomTaxonomy(&db, tax);
  // Attach some members and facts.
  db.Assert("M1", "IN", "T0.0");
  db.Assert("T0", "ACTS-ON", "T0.0");
  db.Assert("ACTS-ON", "INV", "ACTED-BY");

  MathProvider math(&db.store().entities());
  RuleEngine engine(&db.store(), &math);

  ClosureOptions semi, naive;
  semi.strategy = ClosureOptions::Strategy::kSemiNaive;
  naive.strategy = ClosureOptions::Strategy::kNaive;
  auto a = engine.ComputeClosure(db.rules(), semi);
  auto b = engine.ComputeClosure(db.rules(), naive);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ((*a)->derived().size(), (*b)->derived().size());
  // Same fact sets, not just sizes.
  bool equal = true;
  (*a)->derived().ForEach(Pattern(), [&](const Fact& f) {
    if (!(*b)->derived().Contains(f)) equal = false;
    return equal;
  });
  EXPECT_TRUE(equal);
  // Naive does strictly more candidate work on multi-round closures.
  if ((*a)->stats().rounds > 2) {
    EXPECT_GE((*b)->stats().candidate_facts,
              (*a)->stats().candidate_facts);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TaxonomyShapes, StrategyEquivalenceTest,
    ::testing::Values(std::tuple(1, 2), std::tuple(2, 2), std::tuple(3, 2),
                      std::tuple(2, 4), std::tuple(4, 2),
                      std::tuple(1, 8)));

}  // namespace
}  // namespace lsd
