#include "rules/template.h"

#include <gtest/gtest.h>

#include "store/entity_table.h"

namespace lsd {
namespace {

TEST(TermTest, EntityAndVariable) {
  Term e = Term::Entity(5);
  Term v = Term::Var(2);
  EXPECT_TRUE(e.is_entity());
  EXPECT_FALSE(e.is_variable());
  EXPECT_EQ(e.entity(), 5u);
  EXPECT_TRUE(v.is_variable());
  EXPECT_EQ(v.var(), 2u);
  EXPECT_NE(e, v);
  EXPECT_EQ(Term::Entity(5), Term::Entity(5));
}

TEST(BindingTest, SetGetUnsetProject) {
  Binding b(3);
  EXPECT_FALSE(b.IsBound(0));
  b.Set(0, 7);
  b.Set(2, 9);
  EXPECT_TRUE(b.IsBound(0));
  EXPECT_EQ(b.Get(0), 7u);
  EXPECT_EQ(b.Project({2, 0}), (std::vector<EntityId>{9, 7}));
  b.Unset(0);
  EXPECT_FALSE(b.IsBound(0));
}

TEST(TemplateTest, BindProducesPattern) {
  Template t(Term::Var(0), Term::Entity(3), Term::Var(1));
  Binding b(2);
  Pattern p0 = t.Bind(b);
  EXPECT_FALSE(p0.SourceBound());
  EXPECT_EQ(p0.relationship, 3u);
  EXPECT_FALSE(p0.TargetBound());
  b.Set(0, 8);
  Pattern p1 = t.Bind(b);
  EXPECT_EQ(p1.source, 8u);
}

TEST(TemplateTest, UnifyBindsVariables) {
  Template t(Term::Var(0), Term::Entity(3), Term::Var(1));
  Binding b(2);
  EXPECT_TRUE(t.Unify(Fact(7, 3, 9), b));
  EXPECT_EQ(b.Get(0), 7u);
  EXPECT_EQ(b.Get(1), 9u);
}

TEST(TemplateTest, UnifyRejectsMismatchedEntity) {
  Template t(Term::Var(0), Term::Entity(3), Term::Var(1));
  Binding b(2);
  EXPECT_FALSE(t.Unify(Fact(7, 4, 9), b));
  EXPECT_FALSE(b.IsBound(0));  // rolled back
}

TEST(TemplateTest, UnifyEnforcesRepeatedVariable) {
  // (?X, CITES, ?X) — the paper's self-citation pattern (Sec 2.7).
  Template t(Term::Var(0), Term::Entity(3), Term::Var(0));
  Binding b(1);
  EXPECT_FALSE(t.Unify(Fact(7, 3, 9), b));
  EXPECT_FALSE(b.IsBound(0));  // rollback across positions
  EXPECT_TRUE(t.Unify(Fact(7, 3, 7), b));
  EXPECT_EQ(b.Get(0), 7u);
}

TEST(TemplateTest, UnifyRespectsExistingBinding) {
  Template t(Term::Var(0), Term::Entity(3), Term::Var(1));
  Binding b(2);
  b.Set(0, 100);
  EXPECT_FALSE(t.Unify(Fact(7, 3, 9), b));
  EXPECT_TRUE(b.IsBound(0));
  EXPECT_EQ(b.Get(0), 100u);   // untouched
  EXPECT_FALSE(b.IsBound(1));  // rolled back
  EXPECT_TRUE(t.Unify(Fact(100, 3, 9), b));
  EXPECT_EQ(b.Get(1), 9u);
}

TEST(TemplateTest, SubstituteAndGroundness) {
  Template t(Term::Var(0), Term::Entity(3), Term::Entity(4));
  Binding b(1);
  EXPECT_FALSE(t.IsGroundUnder(b));
  b.Set(0, 2);
  ASSERT_TRUE(t.IsGroundUnder(b));
  EXPECT_EQ(t.Substitute(b), Fact(2, 3, 4));
}

TEST(TemplateTest, CollectVarsDeduplicates) {
  Template t(Term::Var(1), Term::Var(0), Term::Var(1));
  std::vector<VarId> vars;
  t.CollectVars(&vars);
  EXPECT_EQ(vars, (std::vector<VarId>{1, 0}));
}

TEST(TemplateTest, DebugString) {
  EntityTable entities;
  EntityId person = entities.Intern("PERSON");
  Template t(Term::Var(0), Term::Entity(kEntIsa), Term::Entity(person));
  EXPECT_EQ(t.DebugString(entities, {"X"}), "(?X, ISA, PERSON)");
}

}  // namespace
}  // namespace lsd
