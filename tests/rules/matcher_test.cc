#include "rules/matcher.h"

#include <set>

#include <gtest/gtest.h>

#include "rules/math_provider.h"

namespace lsd {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest() : math_(&store_.entities()) {}

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  FactStore store_;
  MathProvider math_;
};

TEST_F(MatcherTest, SingleAtomEnumerates) {
  store_.Assert("JOHN", "LIKES", "FELIX");
  store_.Assert("JOHN", "LIKES", "MARY");
  store_.Assert("TOM", "LIKES", "SUE");

  Template t(Term::Entity(E("JOHN")), Term::Entity(E("LIKES")),
             Term::Var(0));
  Binding b(1);
  std::set<EntityId> seen;
  Status s = MatchConjunction(store_.base_source(), {t}, b, nullptr,
                              [&](const Binding& bb) {
                                seen.insert(bb.Get(0));
                                return true;
                              });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(seen, (std::set<EntityId>{E("FELIX"), E("MARY")}));
}

TEST_F(MatcherTest, TwoAtomJoin) {
  store_.Assert("TOM", "ENROLLED-IN", "CS100");
  store_.Assert("CS100", "TAUGHT-BY", "HARRY");
  store_.Assert("TOM", "ENROLLED-IN", "MATH101");

  // (?S, ENROLLED-IN, ?C), (?C, TAUGHT-BY, ?T)
  Template a(Term::Var(0), Term::Entity(E("ENROLLED-IN")), Term::Var(1));
  Template c(Term::Var(1), Term::Entity(E("TAUGHT-BY")), Term::Var(2));
  Binding b(3);
  int count = 0;
  Status s = MatchConjunction(store_.base_source(), {a, c}, b, nullptr,
                              [&](const Binding& bb) {
                                EXPECT_EQ(bb.Get(0), E("TOM"));
                                EXPECT_EQ(bb.Get(1), E("CS100"));
                                EXPECT_EQ(bb.Get(2), E("HARRY"));
                                ++count;
                                return true;
                              });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 1);
}

TEST_F(MatcherTest, BindingRestoredAfterMatch) {
  store_.Assert("A", "R", "B");
  Template t(Term::Var(0), Term::Var(1), Term::Var(2));
  Binding b(3);
  ASSERT_TRUE(MatchConjunction(store_.base_source(), {t}, b, nullptr,
                               [](const Binding&) { return true; })
                  .ok());
  EXPECT_FALSE(b.IsBound(0));
  EXPECT_FALSE(b.IsBound(1));
  EXPECT_FALSE(b.IsBound(2));
}

TEST_F(MatcherTest, VarFilterRejects) {
  store_.Assert("A", "R1", "B");
  store_.Assert("A", "R2", "B");
  EntityId r1 = E("R1");
  Template t(Term::Var(0), Term::Var(1), Term::Var(2));
  Binding b(3);
  int count = 0;
  Status s = MatchConjunction(
      store_.base_source(), {t}, b,
      [&](VarId v, EntityId e) { return v != 1 || e != r1; },
      [&](const Binding&) {
        ++count;
        return true;
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 1);
}

TEST_F(MatcherTest, MathAtomDeferredUntilOperandsBound) {
  store_.Assert("JOHN", "EARNS", "25000");
  store_.Assert("TOM", "EARNS", "15000");
  EntityId n20000 = E("20000");

  // (?X, EARNS, ?S), (?S, >, 20000): the comparison atom must run after
  // the EARNS atom binds ?S.
  UnionSource view({&store_.base_source(), &math_});
  Template earns(Term::Var(0), Term::Entity(E("EARNS")), Term::Var(1));
  Template gt(Term::Var(1), Term::Entity(kEntGreater),
              Term::Entity(n20000));
  Binding b(2);
  std::set<EntityId> winners;
  Status s = MatchConjunction(view, {gt, earns}, b, nullptr,
                              [&](const Binding& bb) {
                                winners.insert(bb.Get(0));
                                return true;
                              });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(winners, (std::set<EntityId>{E("JOHN")}));
}

TEST_F(MatcherTest, UnsafeAllUnboundComparisonErrors) {
  UnionSource view({&store_.base_source(), &math_});
  Template gt(Term::Var(0), Term::Entity(kEntGreater), Term::Var(1));
  Binding b(2);
  Status s = MatchConjunction(view, {gt}, b, nullptr,
                              [](const Binding&) { return true; });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(MatcherTest, EarlyStopFromVisitor) {
  for (int i = 0; i < 20; ++i) {
    store_.Assert("A", "R", ("B" + std::to_string(i)).c_str());
  }
  Template t(Term::Entity(E("A")), Term::Entity(E("R")), Term::Var(0));
  Binding b(1);
  int count = 0;
  Status s = MatchConjunction(store_.base_source(), {t}, b, nullptr,
                              [&](const Binding&) { return ++count < 5; });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(count, 5);
}

TEST_F(MatcherTest, GroundAtomActsAsGate) {
  store_.Assert("A", "R", "B");
  store_.Assert("X", "Q", "Y");
  Template gate(Term::Entity(E("A")), Term::Entity(E("R")),
                Term::Entity(E("B")));
  Template open(Term::Var(0), Term::Entity(E("Q")), Term::Var(1));
  Binding b(2);
  int count = 0;
  ASSERT_TRUE(MatchConjunction(store_.base_source(), {open, gate}, b,
                               nullptr,
                               [&](const Binding&) {
                                 ++count;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(count, 1);

  // With the gate closed, nothing matches.
  Template shut(Term::Entity(E("A")), Term::Entity(E("R")),
                Term::Entity(E("NOPE")));
  count = 0;
  ASSERT_TRUE(MatchConjunction(store_.base_source(), {open, shut}, b,
                               nullptr,
                               [&](const Binding&) {
                                 ++count;
                                 return true;
                               })
                  .ok());
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace lsd
