// Incremental closure maintenance (rules/incremental.h): point asserts
// propagate, retracts delete-and-rederive, and the maintained state is
// always equivalent to a full recomputation.
#include "rules/incremental.h"

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "rules/builtin_rules.h"
#include "rules/rule_engine.h"
#include "util/random.h"

namespace lsd {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest()
      : math_(&store_.entities()),
        engine_(&store_, &math_),
        inc_(&store_, &math_, StandardRules()) {
    for (const Fact& f : StandardSeedFacts()) store_.Assert(f);
  }

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  Fact Assert(const char* s, const char* r, const char* t) {
    Fact f = store_.Assert(s, r, t);
    EXPECT_TRUE(inc_.OnAssert(f).ok());
    return f;
  }

  void Retract(const Fact& f) {
    ASSERT_TRUE(store_.Retract(f));
    ASSERT_TRUE(inc_.OnRetract(f).ok());
  }

  // Compares the incremental derived set against a fresh recomputation.
  void ExpectEquivalentToRecompute() {
    auto fresh = engine_.ComputeClosure(StandardRules());
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_EQ(inc_.derived().size(), (*fresh)->derived().size());
    bool equal = true;
    (*fresh)->derived().ForEach(Pattern(), [&](const Fact& f) {
      if (!inc_.derived().Contains(f)) equal = false;
      return equal;
    });
    EXPECT_TRUE(equal) << "incremental and recomputed closures differ";
  }

  FactStore store_;
  MathProvider math_;
  RuleEngine engine_;
  IncrementalClosure inc_;
};

TEST_F(IncrementalTest, AssertPropagatesConsequences) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  Assert("JOHN", "IN", "EMPLOYEE");
  EXPECT_TRUE(inc_.view().Contains(
      Fact(E("JOHN"), E("WORKS-FOR"), E("DEPARTMENT"))));
  ExpectEquivalentToRecompute();
}

TEST_F(IncrementalTest, AssertRequiresFactInBase) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Status s = inc_.OnAssert(Fact(E("A"), E("R"), E("B")));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalTest, AssertingADerivedFactKeepsLayersDisjoint) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Assert("A", "ISA", "B");
  Assert("B", "ISA", "C");
  Fact transitive(E("A"), kEntIsa, E("C"));
  EXPECT_TRUE(inc_.derived().Contains(transitive));
  // Now assert the derived fact explicitly.
  store_.Assert(transitive);
  ASSERT_TRUE(inc_.OnAssert(transitive).ok());
  EXPECT_FALSE(inc_.derived().Contains(transitive));  // moved to base
  EXPECT_TRUE(inc_.view().Contains(transitive));
  ExpectEquivalentToRecompute();
}

TEST_F(IncrementalTest, RetractDeletesConsequences) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Fact isa = Assert("A", "ISA", "B");
  Assert("B", "ISA", "C");
  EXPECT_TRUE(inc_.view().Contains(Fact(E("A"), kEntIsa, E("C"))));
  Retract(isa);
  EXPECT_FALSE(inc_.view().Contains(Fact(E("A"), kEntIsa, E("C"))));
  ExpectEquivalentToRecompute();
}

TEST_F(IncrementalTest, RetractRederivesAlternativeSupport) {
  ASSERT_TRUE(inc_.Initialize().ok());
  // Diamond: (A ISA C) derivable through B and through B2.
  Fact through_b = Assert("A", "ISA", "B");
  Assert("B", "ISA", "C");
  Assert("A", "ISA", "B2");
  Assert("B2", "ISA", "C");
  EXPECT_TRUE(inc_.view().Contains(Fact(E("A"), kEntIsa, E("C"))));
  Retract(through_b);
  // Still supported via B2.
  EXPECT_TRUE(inc_.view().Contains(Fact(E("A"), kEntIsa, E("C"))));
  EXPECT_GT(inc_.stats().retract_rederived, 0u);
  ExpectEquivalentToRecompute();
}

TEST_F(IncrementalTest, RetractedBaseFactMayBeRederivable) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Assert("A", "ISA", "B");
  Assert("B", "ISA", "C");
  // Assert the transitive fact as a base fact too, then retract it: it
  // must survive as a derived fact.
  Fact transitive(E("A"), kEntIsa, E("C"));
  store_.Assert(transitive);
  ASSERT_TRUE(inc_.OnAssert(transitive).ok());
  Retract(transitive);
  EXPECT_TRUE(inc_.view().Contains(transitive));
  EXPECT_TRUE(inc_.derived().Contains(transitive));
  ExpectEquivalentToRecompute();
}

TEST_F(IncrementalTest, RetractRequiresFactGoneFromBase) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Fact f = Assert("A", "R", "B");
  Status s = inc_.OnRetract(f);  // still in base
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalTest, InversionChainMaintained) {
  ASSERT_TRUE(inc_.Initialize().ok());
  Fact inv = Assert("TEACHES", "INV", "TAUGHT-BY");
  Assert("HARRY", "TEACHES", "CS100");
  EXPECT_TRUE(
      inc_.view().Contains(Fact(E("CS100"), E("TAUGHT-BY"), E("HARRY"))));
  Retract(inv);
  EXPECT_FALSE(
      inc_.view().Contains(Fact(E("CS100"), E("TAUGHT-BY"), E("HARRY"))));
  ExpectEquivalentToRecompute();
}

// Randomized equivalence: a run of interleaved asserts/retracts over a
// pool of taxonomy and data facts always matches full recomputation.
class IncrementalRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalRandomTest, AlwaysEquivalentToRecompute) {
  FactStore store;
  MathProvider math(&store.entities());
  RuleEngine engine(&store, &math);
  IncrementalClosure inc(&store, &math, StandardRules());
  for (const Fact& f : StandardSeedFacts()) store.Assert(f);
  ASSERT_TRUE(inc.Initialize().ok());

  Rng rng(GetParam());
  // Candidate fact pool: a small taxonomy + memberships + data facts.
  std::vector<Fact> pool;
  auto add = [&](const char* s, const char* r, const char* t) {
    pool.push_back(Fact(store.entities().Intern(s),
                        store.entities().Intern(r),
                        store.entities().Intern(t)));
  };
  add("C1", "ISA", "C2");
  add("C2", "ISA", "C3");
  add("C3", "ISA", "C4");
  add("C1B", "ISA", "C2");
  add("M1", "IN", "C1");
  add("M2", "IN", "C1B");
  add("C2", "HAS", "X");
  add("HAS", "INV", "OWNED-BY");
  add("HAS", "SYN", "POSSESSES");
  add("C1", "SYN", "C1B");

  std::vector<bool> present(pool.size(), false);
  for (int step = 0; step < 60; ++step) {
    size_t i = rng.Uniform(pool.size());
    if (!present[i]) {
      store.Assert(pool[i]);
      ASSERT_TRUE(inc.OnAssert(pool[i]).ok());
      present[i] = true;
    } else {
      ASSERT_TRUE(store.Retract(pool[i]));
      ASSERT_TRUE(inc.OnRetract(pool[i]).ok());
      present[i] = false;
    }
    auto fresh = engine.ComputeClosure(StandardRules());
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(inc.derived().size(), (*fresh)->derived().size())
        << "divergence at step " << step << " seed " << GetParam();
    bool equal = true;
    (*fresh)->derived().ForEach(Pattern(), [&](const Fact& f) {
      if (!inc.derived().Contains(f)) equal = false;
      return equal;
    });
    ASSERT_TRUE(equal) << "content divergence at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LooseDbIncrementalTest, BrowsingWorksUnderIncrementalMode) {
  LooseDbOptions options;
  options.incremental_maintenance = true;
  LooseDb db(options);
  db.Assert("JOHN", "IN", "EMPLOYEE");
  db.Assert("EMPLOYEE", "ISA", "PERSON");
  db.Assert("JOHN", "LIKES", "FELIX");
  ASSERT_TRUE(db.View().ok());
  db.Assert("FELIX", "IN", "CAT");  // maintained incrementally

  auto hood = db.Navigate("JOHN");
  ASSERT_TRUE(hood.ok());
  bool person = false;
  for (EntityId c : hood->classes) {
    if (db.entities().Name(c) == "PERSON") person = true;
  }
  EXPECT_TRUE(person);

  // Probing rebuilds the lattice against the maintained closure.
  db.Assert("INTERN", "ISA", "EMPLOYEE");
  db.Assert("MANAGES", "ISA", "WORKS-FOR");
  db.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  auto probe = db.Probe("(JOHN, MANAGES, SHIPPING)");
  ASSERT_TRUE(probe.ok());
  ASSERT_EQ(probe->successes.size(), 1u);
  EXPECT_EQ(probe->successes[0].substitutions[0].Describe(db.entities()),
            "WORKS-FOR instead of MANAGES");
}

TEST(LooseDbIncrementalTest, FacadeModeMatchesRecomputeMode) {
  LooseDbOptions inc_options;
  inc_options.incremental_maintenance = true;
  LooseDb inc_db(inc_options);
  LooseDb full_db;

  auto mutate = [&](auto&& fn) {
    fn(inc_db);
    fn(full_db);
  };
  mutate([](LooseDb& db) { db.Assert("JOHN", "IN", "EMPLOYEE"); });
  ASSERT_TRUE(inc_db.View().ok());  // initialize incremental state
  mutate([](LooseDb& db) {
    db.Assert("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  });
  mutate([](LooseDb& db) { db.Assert("EMPLOYEE", "ISA", "PERSON"); });

  auto q1 = inc_db.Query("(JOHN, ?R, ?X)");
  auto q2 = full_db.Query("(JOHN, ?R, ?X)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->rows, q2->rows);

  mutate([](LooseDb& db) {
    db.Retract("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
  });
  q1 = inc_db.Query("(JOHN, ?R, ?X)");
  q2 = full_db.Query("(JOHN, ?R, ?X)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->rows, q2->rows);

  // Rule toggles force a rebuild but stay correct.
  mutate([](LooseDb& db) {
    (void)db.SetRuleEnabled("mem-source", false);
  });
  q1 = inc_db.Query("(JOHN, ?R, ?X)");
  q2 = full_db.Query("(JOHN, ?R, ?X)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->rows, q2->rows);
}

}  // namespace
}  // namespace lsd
