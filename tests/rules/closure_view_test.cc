#include "rules/closure_view.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

class ClosureViewTest : public ::testing::Test {
 protected:
  ClosureViewTest()
      : math_(&store_.entities()),
        view_(&store_, &derived_source_, &math_) {}

  EntityId E(const char* name) { return store_.entities().Intern(name); }

  FactStore store_;
  TripleIndex derived_;
  IndexSource derived_source_{&derived_};
  MathProvider math_;
  ClosureView view_;
};

TEST_F(ClosureViewTest, LayersBaseAndDerived) {
  store_.Assert("A", "R", "B");
  derived_.Insert(Fact(E("A"), E("R"), E("C")));
  EXPECT_TRUE(view_.Contains(Fact(E("A"), E("R"), E("B"))));
  EXPECT_TRUE(view_.Contains(Fact(E("A"), E("R"), E("C"))));
  EXPECT_EQ(view_.Match(Pattern(E("A"), kAnyEntity, kAnyEntity)).size(),
            2u);
}

TEST_F(ClosureViewTest, MathLayerAnswersComparisons) {
  EntityId a = E("25000"), b = E("20000");
  EXPECT_TRUE(view_.Contains(Fact(a, kEntGreater, b)));
  EXPECT_FALSE(view_.Contains(Fact(a, kEntLess, b)));
  // Enumerable with the relationship bound and one operand bound.
  EXPECT_EQ(view_.Match(Pattern(a, kEntGreater, kAnyEntity)).size(), 1u);
}

TEST_F(ClosureViewTest, IsaAxioms) {
  EntityId john = E("JOHN");
  EXPECT_TRUE(view_.Contains(Fact(john, kEntIsa, john)));
  EXPECT_TRUE(view_.Contains(Fact(john, kEntIsa, kEntTop)));
  EXPECT_TRUE(view_.Contains(Fact(kEntBottom, kEntIsa, john)));
  EXPECT_FALSE(view_.Contains(Fact(kEntTop, kEntIsa, john)));
}

TEST_F(ClosureViewTest, IsaEnumerationIncludesAxiomsWithoutDuplicates) {
  EntityId john = E("JOHN");
  store_.Assert("JOHN", "ISA", "JOHN");  // explicit reflexive fact
  store_.Assert("JOHN", "ISA", "PERSON");
  auto facts = view_.Match(Pattern(john, kEntIsa, kAnyEntity));
  // JOHN, PERSON, ANY — the stored reflexive fact must not double up.
  EXPECT_EQ(facts.size(), 3u);
}

TEST_F(ClosureViewTest, VirtualLayersSilentWithUnboundRelationship) {
  EntityId john = E("JOHN");
  store_.Assert("JOHN", "LIKES", "FELIX");
  auto facts = view_.Match(Pattern(john, kAnyEntity, kAnyEntity));
  ASSERT_EQ(facts.size(), 1u);  // no (JOHN, ISA, JOHN), no (JOHN, =, ...)
  EXPECT_EQ(facts[0].relationship, E("LIKES"));
}

// Sec 5.2: the generalized template (?Z, ANY, FREE) matches anything
// related to FREE via an individual relationship.
TEST_F(ClosureViewTest, AnyAsRelationshipRewrites) {
  store_.Assert("MOVIE-NIGHT", "COSTS", "FREE");
  store_.Assert("JOHN", "LIKES", "FREE");
  EntityId free = E("FREE");
  auto facts = view_.Match(Pattern(kAnyEntity, kEntTop, free));
  EXPECT_EQ(facts.size(), 2u);
  for (const Fact& f : facts) {
    EXPECT_EQ(f.relationship, kEntTop);
  }
  EXPECT_TRUE(view_.Contains(Fact(E("MOVIE-NIGHT"), kEntTop, free)));
  EXPECT_FALSE(view_.Contains(Fact(E("NOBODY"), kEntTop, free)));
}

TEST_F(ClosureViewTest, AnyAsTargetRewrites) {
  store_.Assert("JOHN", "GRADUATE-OF", "USC");
  EXPECT_TRUE(view_.Contains(Fact(E("JOHN"), E("GRADUATE-OF"), kEntTop)));
  EXPECT_FALSE(view_.Contains(Fact(E("MARY"), E("GRADUATE-OF"), kEntTop)));
}

// Rule (1a) runs downward: NONE (not ANY) absorbs the source position.
TEST_F(ClosureViewTest, NoneAsSourceRewrites) {
  store_.Assert("JOHN", "GRADUATE-OF", "USC");
  EXPECT_TRUE(
      view_.Contains(Fact(kEntBottom, E("GRADUATE-OF"), E("USC"))));
  EXPECT_FALSE(view_.Contains(Fact(kEntTop, E("GRADUATE-OF"), E("USC"))));
}

// The r ∈ R_i side condition: class-relationship facts do not rewrite.
TEST_F(ClosureViewTest, AnyRewriteSkipsClassRelationships) {
  store_.Assert("EMPLOYEE", "TOTAL-NUMBER", "180");
  store_.MarkClassRelationship(E("TOTAL-NUMBER"));
  store_.Assert("EMPLOYEE", "EARNS", "SALARY");
  EntityId employee = E("EMPLOYEE");
  // EARNS generalizes to ANY; TOTAL-NUMBER does not.
  auto facts = view_.Match(Pattern(employee, kEntTop, kAnyEntity));
  ASSERT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0].target, E("SALARY"));
}

TEST_F(ClosureViewTest, AnyRewriteDeduplicates) {
  store_.Assert("JOHN", "LIKES", "FELIX");
  store_.Assert("JOHN", "ADORES", "FELIX");
  // Two facts, one projected (JOHN, ANY, FELIX).
  auto facts = view_.Match(Pattern(E("JOHN"), kEntTop, E("FELIX")));
  EXPECT_EQ(facts.size(), 1u);
}

TEST_F(ClosureViewTest, EnumerabilityDelegatesToMath) {
  EXPECT_FALSE(
      view_.Enumerable(Pattern(kAnyEntity, kEntLess, kAnyEntity)));
  EXPECT_TRUE(view_.Enumerable(Pattern(E("3"), kEntLess, kAnyEntity)));
  EXPECT_TRUE(view_.Enumerable(Pattern()));
}

TEST_F(ClosureViewTest, EstimateMatchesCountsLayers) {
  store_.Assert("A", "R", "B");
  derived_.Insert(Fact(E("A"), E("R"), E("C")));
  EXPECT_GE(view_.EstimateMatches(Pattern(E("A"), kAnyEntity, kAnyEntity)),
            2u);
}

}  // namespace
}  // namespace lsd
