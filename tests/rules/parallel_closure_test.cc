// Randomized equivalence tests for the parallel semi-naive closure: for
// random taxonomy workloads (trees and DAGs), the derived fact set must
// be bit-identical for every thread count, and must match the naive
// strategy's fixpoint (the semantic anchor).
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "rules/math_provider.h"
#include "rules/rule_engine.h"
#include "workload/random_graph.h"

namespace lsd {
namespace {

struct WorkloadParams {
  int depth;
  int fanout;
  double extra_parent_prob;
  uint64_t seed;
};

std::string ParamName(
    const ::testing::TestParamInfo<WorkloadParams>& info) {
  const WorkloadParams& p = info.param;
  return "d" + std::to_string(p.depth) + "f" + std::to_string(p.fanout) +
         (p.extra_parent_prob > 0 ? "dag" : "tree") + "s" +
         std::to_string(p.seed);
}

std::vector<Fact> AllDerived(const Closure& closure) {
  std::vector<Fact> out = closure.derived().Match(Pattern());
  std::sort(out.begin(), out.end(), OrderSrt());
  return out;
}

class ParallelClosureTest : public ::testing::TestWithParam<WorkloadParams> {
 protected:
  // Builds the same workload shape as bench_closure: a random taxonomy
  // with members on the leaves plus a class-level fact, so the
  // generalization/membership rules derive real work.
  void BuildWorkload() {
    const WorkloadParams& p = GetParam();
    workload::TaxonomyOptions tax;
    tax.depth = p.depth;
    tax.fanout = p.fanout;
    tax.extra_parent_prob = p.extra_parent_prob;
    tax.seed = p.seed;
    auto taxonomy = workload::BuildRandomTaxonomy(&db_, tax);
    for (size_t i = 0; i < taxonomy.levels.back().size(); ++i) {
      db_.Assert("M" + std::to_string(i), "IN", taxonomy.levels.back()[i]);
    }
    db_.Assert(taxonomy.Root(), "NEEDS", "OXYGEN");
  }

  std::unique_ptr<Closure> Compute(ClosureOptions::Strategy strategy,
                                   unsigned num_threads) {
    MathProvider math(&db_.store().entities());
    RuleEngine engine(&db_.store(), &math);
    ClosureOptions options;
    options.strategy = strategy;
    options.num_threads = num_threads;
    auto closure = engine.ComputeClosure(db_.rules(), options);
    EXPECT_TRUE(closure.ok()) << closure.status().ToString();
    return closure.ok() ? std::move(*closure) : nullptr;
  }

  LooseDb db_;
};

TEST_P(ParallelClosureTest, ThreadCountsAgreeFactForFact) {
  BuildWorkload();
  auto sequential = Compute(ClosureOptions::Strategy::kSemiNaive, 1);
  ASSERT_NE(sequential, nullptr);
  const std::vector<Fact> want = AllDerived(*sequential);

  for (unsigned num_threads : {2u, 4u, 8u}) {
    auto parallel =
        Compute(ClosureOptions::Strategy::kSemiNaive, num_threads);
    ASSERT_NE(parallel, nullptr) << "num_threads=" << num_threads;
    EXPECT_EQ(AllDerived(*parallel), want)
        << "num_threads=" << num_threads;
    // The round structure and candidate accounting are deterministic
    // too, not just the final set.
    EXPECT_EQ(parallel->stats().rounds, sequential->stats().rounds);
    EXPECT_EQ(parallel->stats().derived_facts,
              sequential->stats().derived_facts);
    EXPECT_EQ(parallel->stats().candidate_facts,
              sequential->stats().candidate_facts);
  }
}

TEST_P(ParallelClosureTest, MatchesNaiveAnchor) {
  BuildWorkload();
  auto naive = Compute(ClosureOptions::Strategy::kNaive, 1);
  auto parallel = Compute(ClosureOptions::Strategy::kSemiNaive, 4);
  ASSERT_NE(naive, nullptr);
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(AllDerived(*parallel), AllDerived(*naive));
}

// Depths/fanouts chosen so round-1 deltas range from below the
// per-worker minimum (threads decline to spawn) to several hundred
// facts (up to 8 workers actually run); DAG variants widen the
// multi-parent join paths.
INSTANTIATE_TEST_SUITE_P(
    RandomTaxonomies, ParallelClosureTest,
    ::testing::Values(WorkloadParams{2, 3, 0.0, 7},
                      WorkloadParams{4, 3, 0.0, 7},
                      WorkloadParams{4, 3, 0.3, 11},
                      WorkloadParams{5, 3, 0.15, 13},
                      WorkloadParams{16, 1, 0.0, 17},
                      WorkloadParams{3, 6, 0.2, 23}),
    ParamName);

}  // namespace
}  // namespace lsd
