// Cross-module scenarios: the full paper pipeline (facts -> rules ->
// closure -> query -> browse -> probe) exercised end to end, plus
// persistence of a browsed database.
#include <filesystem>

#include <gtest/gtest.h>

#include "core/loose_db.h"
#include "workload/music_domain.h"
#include "workload/org_domain.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

TEST(IntegrationTest, QueryingAndBrowsingInterleave) {
  // Sec 4.1: "a user may submit a complex query, and use the answer as a
  // starting point for browsing."
  LooseDb db;
  workload::BuildMusicDomain(&db);

  // Query: who likes John back?
  auto r = db.Query("(JOHN, LIKES, ?X) and (?X, LIKES, JOHN)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  std::string friend_name = db.entities().Name(r->rows[0][0]);
  EXPECT_EQ(friend_name, "FELIX");

  // Browse the answer's neighborhood.
  auto hood = db.Navigate(friend_name);
  ASSERT_TRUE(hood.ok());
  std::set<std::string> classes;
  for (EntityId e : hood->classes) classes.insert(db.entities().Name(e));
  EXPECT_TRUE(classes.count("CAT"));
}

TEST(IntegrationTest, SchemaAndDataAreQueriedUniformly) {
  // Sec 2.6: no schema/data dichotomy — one template style reaches both
  // "schema facts" (EMPLOYEE, EARNS, SALARY) and "data facts".
  LooseDb db;
  workload::OrgOptions options;
  options.num_employees = 5;
  workload::BuildOrgDomain(&db, options);
  auto schema = db.Query("(EMPLOYEE, EARNS, ?WHAT)");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Success());
  auto data = db.Query("(EMP-0, EARNS, ?WHAT)");
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->Success());
}

TEST(IntegrationTest, ProbeFullPipelineOnCampus) {
  LooseDb db;
  workload::BuildCampusDomain(&db);
  auto probe = db.Probe("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(probe.ok());
  ASSERT_EQ(probe->successes.size(), 2u);
  // The rescued results are the paper's: MOVIE-NIGHT and CONCERT-PASS.
  std::set<std::string> rescued;
  for (const auto& s : probe->successes) {
    for (const auto& row : s.result.rows) {
      rescued.insert(db.entities().Name(row[0]));
    }
  }
  EXPECT_TRUE(rescued.count("MOVIE-NIGHT"));
  EXPECT_TRUE(rescued.count("CONCERT-PASS"));
}

TEST(IntegrationTest, EvolutionWithoutRestructuring) {
  // The introduction's motivation: an evolving environment needs no
  // schema surgery — new kinds of facts are just asserted.
  LooseDb db;
  workload::OrgOptions options;
  options.num_employees = 5;
  workload::BuildOrgDomain(&db, options);
  // A new aspect of the world appears: employees have hobbies.
  db.Assert("EMP-0", "HOBBY", "CHESS");
  db.Assert("EMP-1", "HOBBY", "SAILING");
  auto r = db.Query("(?X, HOBBY, ?H)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  // And "where does EMP-0 appear?" needs no knowledge of organization.
  auto t = db.Try("EMP-0");
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t->find("CHESS"), std::string::npos);
}

TEST(IntegrationTest, MultiDatabaseUnification) {
  // The introduction: unified access to multiple databases is simpler
  // without structure. Merge two .lsd documents and one synonym fact.
  LooseDb db;
  ASSERT_TRUE(db.LoadText("(JOHN, EARNS, $25000)\n").ok());
  ASSERT_TRUE(db.LoadText("(JOHNNY, OWES, $9000)\n").ok());
  db.Assert("JOHN", "SYN", "JOHNNY");
  auto r = db.Query("(JOHN, OWES, ?X)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Success());
  auto r2 = db.Query("(JOHNNY, EARNS, $25000)");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->truth);
}

TEST(IntegrationTest, BrowsedDatabaseSurvivesPersistence) {
  auto dir = std::filesystem::temp_directory_path() / "lsd_integration";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string prefix = (dir / "music").string();
  {
    LooseDb db;
    workload::BuildMusicDomain(&db);
    ASSERT_TRUE(db.Save(prefix).ok());
    db.Assert("JOHN", "LIKES", "OPERA");  // post-snapshot WAL record
  }
  LooseDb db;
  ASSERT_TRUE(db.Open(prefix).ok());
  auto hood = db.Navigate("JOHN");
  ASSERT_TRUE(hood.ok());
  auto assocs = db.Associations("JOHN", "MOZART");
  ASSERT_TRUE(assocs.ok());
  bool composed = false;
  for (const auto& a : *assocs) {
    if (a.chain.size() > 1) composed = true;
  }
  EXPECT_TRUE(composed);
  EXPECT_TRUE(db.Query("(JOHN, LIKES, OPERA)")->truth);
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, ContradictionFreeDefinitionOfDatabase) {
  // Sec 2.6: a loosely structured database is facts + rules whose
  // closure is contradiction-free — including contradictions reachable
  // only via inference chains.
  LooseDb db;
  db.Assert("ADORES", "ISA", "LOVES");
  db.Assert("LOVES", "CONTRA", "HATES");
  db.Assert("ROMEO", "ADORES", "JULIET");
  EXPECT_TRUE(db.CheckIntegrity().ok());
  db.Assert("ROMEO", "HATES", "JULIET");
  EXPECT_TRUE(db.CheckIntegrity().IsIntegrityViolation());
  db.Retract("ROMEO", "HATES", "JULIET");
  EXPECT_TRUE(db.CheckIntegrity().ok());
}

TEST(IntegrationTest, InconsistencyAndReplicationAreAllowed) {
  // Sec 2.6 explicitly permits "(JOHN, EARN, $25000), (JOHN, EARN,
  // $40000) and (JOHN, INCOME, $40000)" — loose stores tolerate them.
  LooseDb db;
  db.Assert("JOHN", "EARN", "$25000");
  db.Assert("JOHN", "EARN", "$40000");
  db.Assert("JOHN", "INCOME", "$40000");
  EXPECT_TRUE(db.CheckIntegrity().ok());
  auto r = db.Query("(JOHN, EARN, ?X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

}  // namespace
}  // namespace lsd
