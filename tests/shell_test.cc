// End-to-end smoke test of the interactive shell: drives lsd_shell via
// a pipe and checks the rendered output.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#ifndef LSD_BINARY_DIR
#define LSD_BINARY_DIR "."
#endif
#ifndef LSD_SOURCE_DIR
#define LSD_SOURCE_DIR "."
#endif

namespace {

std::string RunShell(const std::string& script) {
  std::string cmd = "printf '" + script + "' | " + LSD_BINARY_DIR +
                    "/tools/lsd_shell 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "<popen failed>";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.append(buf, n);
  }
  pclose(pipe);
  return out;
}

TEST(ShellTest, AssertQueryRoundTrip) {
  std::string out = RunShell(
      "assert (JOHN, LIKES, FELIX)\\n"
      "query (JOHN, LIKES, ?X)\\n"
      "quit\\n");
  EXPECT_NE(out.find("added"), std::string::npos);
  EXPECT_NE(out.find("FELIX"), std::string::npos);
}

TEST(ShellTest, LoadDataFileAndProbe) {
  std::string out = RunShell(
      std::string("load ") + LSD_SOURCE_DIR + "/data/campus.lsd\\n" +
      "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)\\n"
      "quit\\n");
  EXPECT_NE(out.find("Query failed. Retrying..."), std::string::npos);
  EXPECT_NE(out.find("FRESHMAN instead of STUDENT"), std::string::npos);
  EXPECT_NE(out.find("CHEAP instead of FREE"), std::string::npos);
}

TEST(ShellTest, NavigationAndOperators) {
  std::string out = RunShell(
      std::string("load ") + LSD_SOURCE_DIR + "/data/music.lsd\\n" +
      "nav JOHN\\n"
      "try MOZART\\n"
      "assoc JOHN MOZART\\n"
      "dist LEOPOLD SERKIN\\n"
      "call composer-of(PC#9-WAM, ?C)\\n"
      "stats\\n"
      "quit\\n");
  EXPECT_NE(out.find("JOHN **"), std::string::npos);
  EXPECT_NE(out.find("try(MOZART):"), std::string::npos);
  EXPECT_NE(out.find("FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY"),
            std::string::npos);
  EXPECT_NE(out.find("semantic distance 3"), std::string::npos);
  EXPECT_NE(out.find("MOZART"), std::string::npos);
  EXPECT_NE(out.find("asserted facts:"), std::string::npos);
}

TEST(ShellTest, RulesAndIntegrity) {
  std::string out = RunShell(
      std::string("load ") + LSD_SOURCE_DIR + "/data/org.lsd\\n" +
      "check\\n"
      "exclude mem-source\\n"
      "rules\\n"
      "quit\\n");
  EXPECT_NE(out.find("contradicts built-in arithmetic"),
            std::string::npos);
  EXPECT_NE(out.find("[ ] rule mem-source"), std::string::npos);
}

TEST(ShellTest, SessionNavigationAndDot) {
  std::string out = RunShell(
      std::string("load ") + LSD_SOURCE_DIR + "/data/music.lsd\\n" +
      "visit JOHN\\n"
      "visit MOZART\\n"
      "back\\n"
      "forward\\n"
      "dot LEOPOLD\\n"
      "quit\\n");
  EXPECT_NE(out.find("[JOHN] > MOZART"), std::string::npos);
  EXPECT_NE(out.find("JOHN > [MOZART]"), std::string::npos);
  EXPECT_NE(out.find("digraph lsd {"), std::string::npos);
  EXPECT_NE(out.find("\"LEOPOLD\" -> \"MOZART\""), std::string::npos);
}

TEST(ShellTest, UnknownCommandIsReported) {
  std::string out = RunShell("frobnicate\\nquit\\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

}  // namespace
