#include "baseline/relational.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

using baseline::Catalog;
using baseline::HashJoin;
using baseline::Relation;
using baseline::Row;
using baseline::Select;

class RelationalTest : public ::testing::Test {
 protected:
  EntityId E(const char* name) { return entities_.Intern(name); }

  EntityTable entities_;
};

TEST_F(RelationalTest, CatalogLifecycle) {
  Catalog catalog;
  auto r = catalog.CreateRelation("EMP", {"NAME", "DEPT"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(catalog.CreateRelation("EMP", {"X"}).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.Get("EMP").ok());
  EXPECT_TRUE(catalog.Get("NOPE").status().IsNotFound());
  ASSERT_TRUE(catalog.Drop("EMP").ok());
  EXPECT_TRUE(catalog.Get("EMP").status().IsNotFound());
}

TEST_F(RelationalTest, InsertValidatesArity) {
  Relation rel("EMP", {"NAME", "DEPT"});
  EXPECT_TRUE(rel.Insert({E("JOHN"), E("SHIPPING")}).ok());
  EXPECT_FALSE(rel.Insert({E("JOHN")}).ok());
  EXPECT_EQ(rel.size(), 1u);
}

TEST_F(RelationalTest, IndexedAndScannedLookupAgree) {
  Relation rel("EMP", {"NAME", "DEPT"});
  rel.Insert({E("JOHN"), E("SHIPPING")});
  rel.Insert({E("TOM"), E("SHIPPING")});
  rel.Insert({E("MARY"), E("RECEIVING")});
  auto scanned = rel.Lookup("DEPT", E("SHIPPING"));
  ASSERT_TRUE(rel.CreateIndex("DEPT").ok());
  EXPECT_TRUE(rel.HasIndex("DEPT"));
  auto indexed = rel.Lookup("DEPT", E("SHIPPING"));
  EXPECT_EQ(scanned, indexed);
  EXPECT_EQ(indexed.size(), 2u);
}

TEST_F(RelationalTest, IndexMaintainedOnInsert) {
  Relation rel("EMP", {"NAME"});
  ASSERT_TRUE(rel.CreateIndex("NAME").ok());
  rel.Insert({E("JOHN")});
  EXPECT_EQ(rel.Lookup("NAME", E("JOHN")).size(), 1u);
}

TEST_F(RelationalTest, SelectProjects) {
  Relation rel("EMP", {"NAME", "DEPT", "SALARY"});
  rel.Insert({E("JOHN"), E("SHIPPING"), E("$26000")});
  rel.Insert({E("TOM"), E("ACCOUNTING"), E("$27000")});
  auto rows = Select(rel, "NAME", E("JOHN"), {"SALARY"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], Row{E("$26000")});
  EXPECT_TRUE(Select(rel, "NOPE", E("JOHN"), {}).status().IsNotFound());
  EXPECT_TRUE(
      Select(rel, "NAME", E("JOHN"), {"NOPE"}).status().IsNotFound());
}

TEST_F(RelationalTest, HashJoinMatchesPairs) {
  Relation emp("EMP", {"NAME", "DEPT"});
  emp.Insert({E("JOHN"), E("SHIPPING")});
  emp.Insert({E("TOM"), E("ACCOUNTING")});
  Relation dept("DEPT", {"NAME", "FLOOR"});
  dept.Insert({E("SHIPPING"), E("1")});
  dept.Insert({E("RECEIVING"), E("2")});
  auto joined = HashJoin(emp, "DEPT", dept, "NAME");
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->size(), 1u);
  EXPECT_EQ((*joined)[0].first[0], E("JOHN"));
  EXPECT_EQ((*joined)[0].second[1], E("1"));
}

TEST_F(RelationalTest, SchemaEvolution) {
  Relation rel("EMP", {"NAME"});
  rel.Insert({E("JOHN")});
  ASSERT_TRUE(rel.CreateIndex("NAME").ok());
  ASSERT_TRUE(rel.AddColumn("PHONE", E("UNKNOWN")).ok());
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_EQ(rel.rows()[0][1], E("UNKNOWN"));
  EXPECT_EQ(rel.AddColumn("PHONE", E("X")).code(),
            StatusCode::kAlreadyExists);

  ASSERT_TRUE(rel.DropColumn("PHONE").ok());
  EXPECT_EQ(rel.arity(), 1u);
  // The NAME index survives the rebuild.
  EXPECT_EQ(rel.Lookup("NAME", E("JOHN")).size(), 1u);
  EXPECT_TRUE(rel.DropColumn("PHONE").IsNotFound());
}

TEST_F(RelationalTest, DropColumnShiftsIndexPositions) {
  Relation rel("EMP", {"A", "B", "C"});
  rel.Insert({E("1"), E("2"), E("3")});
  ASSERT_TRUE(rel.CreateIndex("C").ok());
  ASSERT_TRUE(rel.DropColumn("A").ok());
  EXPECT_EQ(rel.Lookup("C", E("3")).size(), 1u);
  EXPECT_EQ(rel.Lookup("B", E("2")).size(), 1u);
}

}  // namespace
}  // namespace lsd
