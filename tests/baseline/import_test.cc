#include "baseline/import.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

using baseline::Catalog;
using baseline::ImportCatalog;
using baseline::ImportRelation;
using baseline::ImportShape;
using baseline::Relation;

class ImportTest : public ::testing::Test {
 protected:
  EntityId E(const char* name) { return db_.entities().Intern(name); }

  LooseDb db_;
  Catalog catalog_;
};

TEST_F(ImportTest, KeyedImportMakesAttributeFacts) {
  auto emp = catalog_.CreateRelation("EMP", {"NAME", "DEPT", "SALARY"});
  ASSERT_TRUE(emp.ok());
  (*emp)->Insert({E("JOHN"), E("SHIPPING"), E("$26000")});
  (*emp)->Insert({E("TOM"), E("ACCOUNTING"), E("$27000")});

  auto stats = ImportRelation(**emp, ImportShape::kKeyed, &db_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows, 2u);
  EXPECT_EQ(stats->facts_asserted, 6u);  // 2 x (IN + DEPT + SALARY)
  EXPECT_EQ(stats->row_entities_minted, 0u);

  EXPECT_TRUE(db_.Query("(JOHN, IN, EMP)")->truth);
  EXPECT_TRUE(db_.Query("(JOHN, DEPT, SHIPPING)")->truth);
  EXPECT_TRUE(db_.Query("(TOM, SALARY, $27000)")->truth);
}

TEST_F(ImportTest, ReifiedImportMintsRowEntities) {
  // The paper's enrollment example (Sec 2.6), arriving from a
  // relational source.
  auto enroll =
      catalog_.CreateRelation("ENROLL", {"STUDENT", "COURSE", "GRADE"});
  ASSERT_TRUE(enroll.ok());
  (*enroll)->Insert({E("TOM"), E("CS100"), E("A")});

  auto stats = ImportRelation(**enroll, ImportShape::kReified, &db_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->row_entities_minted, 1u);
  EXPECT_EQ(stats->facts_asserted, 4u);  // IN + 3 attributes

  auto r = db_.Query(
      "(?E, IN, ENROLL) and (?E, STUDENT, TOM) and (?E, COURSE, CS100) "
      "and (?E, GRADE, A)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Success());
}

TEST_F(ImportTest, ImportedDataIsBrowsable) {
  auto emp = catalog_.CreateRelation("EMP", {"NAME", "DEPT"});
  ASSERT_TRUE(emp.ok());
  (*emp)->Insert({E("JOHN"), E("SHIPPING")});
  ASSERT_TRUE(ImportRelation(**emp, ImportShape::kKeyed, &db_).ok());
  auto hood = db_.Navigate("JOHN");
  ASSERT_TRUE(hood.ok());
  bool found = false;
  for (EntityId c : hood->classes) {
    if (db_.entities().Name(c) == "EMP") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ImportTest, TwoDatabasesUnifiedWithSynonyms) {
  // Two relational sources disagreeing on column naming; a synonym fact
  // reconciles them — no restructuring.
  auto a = catalog_.CreateRelation("STAFF", {"NAME", "WAGE"});
  auto b = catalog_.CreateRelation("PERSONNEL", {"NAME", "PAY"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*a)->Insert({E("JOHN"), E("$25000")});
  (*b)->Insert({E("MARY"), E("$30000")});
  ASSERT_TRUE(ImportCatalog(&catalog_, ImportShape::kKeyed, &db_).ok());
  db_.Assert("WAGE", "SYN", "PAY");
  // One vocabulary now reaches both sources.
  auto r = db_.Query("(?X, PAY, ?S)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(ImportTest, ImportCatalogSumsStats) {
  auto a = catalog_.CreateRelation("A", {"K", "V"});
  auto b = catalog_.CreateRelation("B", {"K", "V"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*a)->Insert({E("X1"), E("Y1")});
  (*b)->Insert({E("X2"), E("Y2")});
  auto stats = ImportCatalog(&catalog_, ImportShape::kKeyed, &db_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows, 2u);
  EXPECT_EQ(stats->facts_asserted, 4u);
}

TEST_F(ImportTest, ZeroColumnRelationRejected) {
  Relation bad("BAD", {});
  auto stats = ImportRelation(bad, ImportShape::kKeyed, &db_);
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace lsd
