// End-to-end tests of the TCP front end: greeting, framing, shared
// writes becoming visible across connections, bounded admission, and
// clean shutdown with connections open.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "server/server.h"
#include "server/shared_store.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

// A minimal blocking client over the wire protocol.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    if (connected_) reader_ = std::make_unique<LineReader>(fd_);
  }
  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return connected_; }

  int fd() const { return fd_; }

  StatusOr<WireResponse> Greeting() { return ReadResponse(reader_.get()); }

  // Reads one response without sending anything (for raw-write tests).
  StatusOr<WireResponse> Read() { return ReadResponse(reader_.get()); }

  StatusOr<WireResponse> Send(const std::string& line) {
    LSD_RETURN_IF_ERROR(WriteAll(fd_, line + "\n"));
    return ReadResponse(reader_.get());
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::unique_ptr<LineReader> reader_;
};

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    options.port = 0;  // ephemeral
    server_ = std::make_unique<LsdServer>(&store_, options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  SharedStore store_;
  std::unique_ptr<LsdServer> server_;
};

TEST_F(ServerTest, GreetsAndAnswersPing) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  auto greeting = client.Greeting();
  ASSERT_TRUE(greeting.ok()) << greeting.status().ToString();
  EXPECT_TRUE(greeting->ok);
  EXPECT_NE(greeting->payload.find("lsd server ready"), std::string::npos);

  auto pong = client.Send("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok);
  EXPECT_EQ(pong->payload, "pong\n");

  auto bye = client.Send("quit");
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(bye->ok);
}

TEST_F(ServerTest, ErrorsAreReportedInBand) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  auto response = client.Send("no-such-verb");
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_NE(response->error.find("unknown command"), std::string::npos);
  // The connection survives an in-band error.
  auto pong = client.Send("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok);
}

TEST_F(ServerTest, CommitsAreVisibleAcrossConnections) {
  StartServer();
  TestClient writer(server_->port());
  TestClient reader(server_->port());
  ASSERT_TRUE(writer.Greeting().ok());
  ASSERT_TRUE(reader.Greeting().ok());

  auto added = writer.Send("assert (TOM, ENROLLED-IN, CS100)");
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(added->ok) << added->error;
  EXPECT_EQ(added->payload, "added\n");

  auto rows = reader.Send("query (TOM, ENROLLED-IN, ?C)");
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(rows->ok) << rows->error;
  EXPECT_NE(rows->payload.find("CS100"), std::string::npos);
}

TEST_F(ServerTest, StatsExposesEpochAndPlannerCounters) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.Greeting().ok());
  ASSERT_TRUE(client.Send("assert (A, R, B)")->ok);
  // Two identical queries: the second should hit the plan cache.
  ASSERT_TRUE(client.Send("query (A, R, ?X)")->ok);
  ASSERT_TRUE(client.Send("query (A, R, ?X)")->ok);

  auto stats = client.Send("stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok) << stats->error;
  EXPECT_NE(stats->payload.find("epoch:          1"), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("store version:"), std::string::npos);
  EXPECT_NE(stats->payload.find("planner cache:"), std::string::npos);
  EXPECT_NE(stats->payload.find("commits:        1"), std::string::npos);
  EXPECT_NE(stats->payload.find("sessions:       1 live"), std::string::npos);
}

TEST_F(ServerTest, AdmissionIsBounded) {
  ServerOptions options;
  options.max_sessions = 1;
  StartServer(options);

  TestClient first(server_->port());
  ASSERT_TRUE(first.connected());
  auto greeting = first.Greeting();
  ASSERT_TRUE(greeting.ok());
  EXPECT_TRUE(greeting->ok);

  // The second connection is rejected at the greeting, in-band.
  TestClient second(server_->port());
  ASSERT_TRUE(second.connected());
  auto rejected = second.Greeting();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok);
  EXPECT_NE(rejected->error.find("busy"), std::string::npos);
  EXPECT_EQ(server_->rejected_connections(), 1u);

  // Once the first disconnects, the slot frees up.
  ASSERT_TRUE(first.Send("quit").ok());
  first.Close();
  for (int attempt = 0; attempt < 100; ++attempt) {
    TestClient retry(server_->port());
    ASSERT_TRUE(retry.connected());
    auto retry_greeting = retry.Greeting();
    ASSERT_TRUE(retry_greeting.ok());
    if (retry_greeting->ok) return;  // admitted
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "slot never freed after disconnect";
}

TEST_F(ServerTest, HypotheticalsStaySessionLocalOverTheWire) {
  auto seeded = store_.Commit([](LooseDb& db) {
    workload::BuildCampusDomain(&db);
    return Status::OK();
  });
  ASSERT_TRUE(seeded.ok());
  StartServer();

  TestClient alice(server_->port());
  TestClient bob(server_->port());
  ASSERT_TRUE(alice.Greeting().ok());
  ASSERT_TRUE(bob.Greeting().ok());

  ASSERT_TRUE(alice.Send("hypo retract (MOVIE-NIGHT, COSTS, FREE)")->ok);
  auto alice_menu =
      alice.Send("probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(alice_menu.ok());
  ASSERT_TRUE(alice_menu->ok) << alice_menu->error;
  EXPECT_EQ(alice_menu->payload.find("FRESHMAN instead of STUDENT"),
            std::string::npos);

  auto bob_menu =
      bob.Send("probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  ASSERT_TRUE(bob_menu.ok());
  ASSERT_TRUE(bob_menu->ok) << bob_menu->error;
  EXPECT_NE(bob_menu->payload.find("FRESHMAN instead of STUDENT"),
            std::string::npos);
}

// A client that dribbles its request line out in chunks slower than the
// socket timeout must still be served: SO_RCVTIMEO wakeups with zero
// progress are retried up to io_retries times, and any received byte
// resets the budget.
TEST_F(ServerTest, SlowWriterIsServedWithinRetryBudget) {
  ServerOptions options;
  options.io_timeout = std::chrono::milliseconds(50);
  options.io_retries = 4;
  StartServer(options);

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  // Dribble "ping\n" one byte at a time, sleeping past io_timeout
  // between bytes (but within io_timeout * (io_retries + 1)).
  const std::string request = "ping\n";
  for (char c : request) {
    ASSERT_TRUE(WriteAll(client.fd(), std::string(1, c)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  auto pong = client.Read();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->ok);
  EXPECT_EQ(pong->payload, "pong\n");
}

// With no retry budget, the same dribble is declared a dead client.
TEST_F(ServerTest, SlowWriterIsDroppedWithoutRetryBudget) {
  ServerOptions options;
  options.io_timeout = std::chrono::milliseconds(30);
  options.io_retries = 0;
  StartServer(options);

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  ASSERT_TRUE(WriteAll(client.fd(), "pi").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // The server has hung up; finishing the line gets no response.
  (void)WriteAll(client.fd(), "ng\n");
  auto response = client.Read();
  EXPECT_FALSE(response.ok());
}

TEST_F(ServerTest, StopWithConnectionsOpenIsClean) {
  StartServer();
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<TestClient>(server_->port()));
    ASSERT_TRUE(clients.back()->connected());
    ASSERT_TRUE(clients.back()->Greeting().ok());
  }
  ASSERT_TRUE(clients[0]->Send("ping")->ok);
  server_->Stop();  // joins all connection threads; must not hang
  SUCCEED();
}

}  // namespace
}  // namespace lsd
