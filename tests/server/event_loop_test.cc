// Event-loop lifecycle tests for the reactor front end: graceful
// shutdown drains in-flight pipelined requests, idle connections are
// swept, no fds leak across a server lifetime, backpressure pauses
// reads instead of erroring, and the Sec 5.2 two-session isolation
// suite holds over the binary pipelined transport. These run under TSan
// in CI; the threading they exercise is reactor + worker pool + test
// threads.
#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "server/server.h"
#include "server/shared_store.h"
#include "wire_client.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

using testing_wire::BinaryClient;
using testing_wire::TextClient;

size_t CountOpenFds() {
  size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

class EventLoopTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    options.port = 0;
    server_ = std::make_unique<LsdServer>(&store_, options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  SharedStore store_;
  std::unique_ptr<LsdServer> server_;
};

TEST_F(EventLoopTest, WorkerPoolServesManyConnections) {
  ServerOptions options;
  options.worker_threads = 4;
  StartServer(options);
  EXPECT_EQ(server_->worker_count(), 4u);

  constexpr int kClients = 8;
  constexpr int kRequests = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TextClient client(server_->port());
      if (!client.connected() || !client.Greeting().ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        auto pong = client.Send("ping");
        if (!pong.ok() || !pong->ok || pong->payload != "pong\n") {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->requests_served(),
            static_cast<uint64_t>(kClients * kRequests));
}

TEST_F(EventLoopTest, ShutdownDrainsInFlightPipelinedRequests) {
  StartServer();
  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  constexpr int kWindow = 32;
  const uint64_t before = server_->requests_served();
  for (int i = 0; i < kWindow; ++i) {
    ASSERT_TRUE(client.SendRequest(i, "ping").ok());
  }
  // Wait until every request has executed (responses are queued or
  // flushed), then stop: Stop() must flush what is queued before
  // closing.
  for (int spin = 0; spin < 2000; ++spin) {
    if (server_->requests_served() >= before + kWindow) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server_->requests_served(), before + kWindow);
  server_->Stop();

  for (int i = 0; i < kWindow; ++i) {
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok())
        << "response " << i << " lost: " << reply.status().ToString();
    EXPECT_EQ(reply->request_id, static_cast<uint64_t>(i));
    EXPECT_EQ(reply->payload, "pong\n");
  }
  // And then a clean EOF.
  auto eof = client.ReadReply();
  EXPECT_FALSE(eof.ok());
}

TEST_F(EventLoopTest, IdleConnectionsAreSwept) {
  ServerOptions options;
  options.io_timeout = std::chrono::milliseconds(30);
  options.io_retries = 1;
  StartServer(options);

  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  ASSERT_TRUE(client.Send("ping")->ok);
  // Past the idle budget (io_timeout * (io_retries + 1)), the server
  // hangs up on its own.
  auto reply = client.Read();
  EXPECT_FALSE(reply.ok());
}

TEST_F(EventLoopTest, NoFdLeaksAcrossAServerLifetime) {
  // Warm up any lazy fd use (e.g. /dev/urandom) before baselining.
  {
    StartServer();
    TextClient warm(server_->port());
    ASSERT_TRUE(warm.Greeting().ok());
    ASSERT_TRUE(warm.Send("ping")->ok);
    warm.Close();
    server_->Stop();
    server_.reset();
  }
  const size_t before = CountOpenFds();
  {
    StartServer();
    std::vector<std::unique_ptr<TextClient>> clients;
    for (int i = 0; i < 50; ++i) {
      clients.push_back(std::make_unique<TextClient>(server_->port()));
      ASSERT_TRUE(clients.back()->connected());
      ASSERT_TRUE(clients.back()->Greeting().ok());
    }
    ASSERT_TRUE(clients[0]->Send("ping")->ok);
    // Half the clients hang up first; the server reaps them. The rest
    // are still open when Stop() runs.
    for (int i = 0; i < 25; ++i) clients[i]->Close();
    server_->Stop();
    server_.reset();
    clients.clear();
  }
  const size_t after = CountOpenFds();
  EXPECT_EQ(before, after);
}

TEST_F(EventLoopTest, BackpressurePausesReadsInsteadOfErroring) {
  ServerOptions options;
  options.worker_threads = 1;
  options.max_queued_requests = 1;
  options.max_inflight_per_connection = 1;
  StartServer(options);

  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  // Blast far more requests than the caps allow in flight; every one
  // must still be answered, in order, with no in-band "busy" errors —
  // the reactor absorbs the burst by pausing reads.
  constexpr int kBurst = 500;
  std::string wire;
  for (int i = 0; i < kBurst; ++i) {
    wire += EncodeFrame(FrameType::kRequest, i, "ping");
  }
  std::thread writer(
      [&] { ASSERT_TRUE(WriteAll(client.fd(), wire).ok()); });
  for (int i = 0; i < kBurst; ++i) {
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->request_id, static_cast<uint64_t>(i));
    EXPECT_EQ(static_cast<int>(reply->type),
              static_cast<int>(FrameType::kOk));
  }
  writer.join();
  EXPECT_GE(server_->reads_paused(), 1u);
}

// The Sec 5.2 golden scenario over the binary pipelined transport: two
// sessions, one retracts (MOVIE-NIGHT, COSTS, FREE) hypothetically, and
// only that session's failing-probe menu loses the FRESHMAN suggestion.
TEST_F(EventLoopTest, BinaryPipelinedSessionsStayIsolated) {
  auto seeded = store_.Commit([](LooseDb& db) {
    workload::BuildCampusDomain(&db);
    return Status::OK();
  });
  ASSERT_TRUE(seeded.ok());
  StartServer();

  BinaryClient alice(server_->port());
  BinaryClient bob(server_->port());
  ASSERT_TRUE(alice.Greeting().ok());
  ASSERT_TRUE(bob.Greeting().ok());

  const std::string probe =
      "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)";
  // Alice pipelines the hypothetical retraction and the probe in one
  // burst; FIFO execution guarantees the probe sees the overlay.
  ASSERT_TRUE(
      alice.SendRequest(1, "hypo retract (MOVIE-NIGHT, COSTS, FREE)").ok());
  ASSERT_TRUE(alice.SendRequest(2, probe).ok());
  auto retracted = alice.ReadReply();
  ASSERT_TRUE(retracted.ok());
  EXPECT_EQ(retracted->request_id, 1u);
  EXPECT_EQ(static_cast<int>(retracted->type),
            static_cast<int>(FrameType::kOk));
  auto alice_menu = alice.ReadReply();
  ASSERT_TRUE(alice_menu.ok());
  EXPECT_EQ(alice_menu->request_id, 2u);
  EXPECT_EQ(alice_menu->payload.find("FRESHMAN instead of STUDENT"),
            std::string::npos)
      << alice_menu->payload;

  // Bob's session still sees the shared store: the paper's menu keeps
  // both generalization suggestions.
  auto bob_menu = bob.Call(9, probe);
  ASSERT_TRUE(bob_menu.ok());
  EXPECT_EQ(bob_menu->request_id, 9u);
  EXPECT_NE(bob_menu->payload.find("FRESHMAN instead of STUDENT"),
            std::string::npos)
      << bob_menu->payload;
  EXPECT_NE(bob_menu->payload.find("CHEAP instead of FREE"),
            std::string::npos)
      << bob_menu->payload;
}

}  // namespace
}  // namespace lsd
