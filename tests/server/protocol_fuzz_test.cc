// Torture tests for the wire framings: the binary frame parser fed
// byte-dribbled, coalesced, pipelined, truncated, and oversized-length
// input, and the server's text line parser fed the same abuse over a
// live socket. The properties: no crashes, every well-formed frame
// decodes with its request id intact, and malformed input ends the
// connection cleanly (an in-band error for bad text, a hangup once
// binary framing is lost).
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "replication/wire.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/shared_store.h"
#include "wire_client.h"
#include "util/random.h"

namespace lsd {
namespace {

using testing_wire::BinaryClient;
using testing_wire::TextClient;

std::vector<BinaryFrame> MakeFrames() {
  std::vector<BinaryFrame> frames;
  auto add = [&](uint64_t id, std::string payload) {
    BinaryFrame f;
    f.type = FrameType::kRequest;
    f.request_id = id;
    f.payload = std::move(payload);
    frames.push_back(std::move(f));
  };
  add(0, "");  // empty payload
  add(1, "ping");
  add(0xFFFF'FFFF'FFFF'FFFFull, std::string(1, '\0'));
  add(42, ".leading dot\n.and.\nnewlines");  // would need stuffing in text
  add(43, std::string(3, static_cast<char>(kBinaryMagic0)));  // magic bytes
  add(44, std::string(10'000, 'x'));  // bigger than one read chunk
  return frames;
}

std::string Concatenate(const std::vector<BinaryFrame>& frames) {
  std::string wire;
  for (const BinaryFrame& f : frames) {
    wire += EncodeFrame(f.type, f.request_id, f.payload);
  }
  return wire;
}

void ExpectDecodesAll(BinaryFrameParser* parser,
                      const std::vector<BinaryFrame>& want,
                      size_t* next_index) {
  BinaryFrame got;
  while (parser->Next(&got) == BinaryFrameParser::Result::kFrame) {
    ASSERT_LT(*next_index, want.size());
    const BinaryFrame& expect = want[*next_index];
    EXPECT_EQ(static_cast<int>(got.type), static_cast<int>(expect.type));
    EXPECT_EQ(got.request_id, expect.request_id);
    EXPECT_EQ(got.payload, expect.payload);
    ++*next_index;
  }
  EXPECT_TRUE(parser->error().empty()) << parser->error();
}

TEST(BinaryFramerTest, ByteDribbledFramesDecode) {
  const std::vector<BinaryFrame> frames = MakeFrames();
  const std::string wire = Concatenate(frames);
  BinaryFrameParser parser;
  size_t decoded = 0;
  for (char c : wire) {
    parser.Feed(std::string_view(&c, 1));
    ExpectDecodesAll(&parser, frames, &decoded);
  }
  EXPECT_EQ(decoded, frames.size());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(BinaryFramerTest, CoalescedPipelineDecodesInOrder) {
  const std::vector<BinaryFrame> frames = MakeFrames();
  BinaryFrameParser parser;
  parser.Feed(Concatenate(frames));
  size_t decoded = 0;
  ExpectDecodesAll(&parser, frames, &decoded);
  EXPECT_EQ(decoded, frames.size());
}

TEST(BinaryFramerTest, RandomChunkingNeverChangesTheFrames) {
  const std::vector<BinaryFrame> frames = MakeFrames();
  const std::string wire = Concatenate(frames);
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    BinaryFrameParser parser;
    size_t decoded = 0;
    size_t pos = 0;
    while (pos < wire.size()) {
      const size_t chunk =
          std::min(wire.size() - pos, static_cast<size_t>(1 + rng.Uniform(97)));
      parser.Feed(std::string_view(wire).substr(pos, chunk));
      pos += chunk;
      ExpectDecodesAll(&parser, frames, &decoded);
    }
    ASSERT_EQ(decoded, frames.size()) << "round " << round;
  }
}

TEST(BinaryFramerTest, TruncatedFrameStaysPending) {
  const std::string wire = EncodeFrame(FrameType::kRequest, 7, "truncated");
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    BinaryFrameParser parser;
    parser.Feed(std::string_view(wire).substr(0, cut));
    BinaryFrame frame;
    EXPECT_EQ(parser.Next(&frame), BinaryFrameParser::Result::kNeedMore);
    EXPECT_TRUE(parser.error().empty());
    // The rest arrives later; the frame completes.
    parser.Feed(std::string_view(wire).substr(cut));
    ASSERT_EQ(parser.Next(&frame), BinaryFrameParser::Result::kFrame);
    EXPECT_EQ(frame.request_id, 7u);
    EXPECT_EQ(frame.payload, "truncated");
  }
}

TEST(BinaryFramerTest, OversizedLengthIsAnErrorNotAnAllocation) {
  std::string header = EncodeFrame(FrameType::kRequest, 1, "");
  // Patch the length field to kMaxBinaryPayload + 1.
  const uint32_t huge = kMaxBinaryPayload + 1;
  for (int i = 0; i < 4; ++i) {
    header[16 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  BinaryFrameParser parser;
  parser.Feed(header);
  BinaryFrame frame;
  EXPECT_EQ(parser.Next(&frame), BinaryFrameParser::Result::kError);
  EXPECT_NE(parser.error().find("exceeds"), std::string::npos);
  // Poisoned: more bytes never resurrect it.
  parser.Feed(EncodeFrame(FrameType::kRequest, 2, "after"));
  EXPECT_EQ(parser.Next(&frame), BinaryFrameParser::Result::kError);
}

TEST(BinaryFramerTest, MalformedHeadersArePermanentErrors) {
  const std::string good = EncodeFrame(FrameType::kRequest, 9, "x");
  struct Case {
    size_t offset;
    char value;
    const char* name;
  };
  const Case cases[] = {
      {0, 'Z', "bad magic0"},    {1, 'z', "bad magic1"},
      {2, 'z', "bad magic2"},    {3, 9, "unknown version"},
      {4, kMaxFrameType + 1, "unknown type"},
      {5, 1, "reserved byte 5"},
      {6, 1, "reserved byte 6"}, {7, 1, "reserved byte 7"},
  };
  for (const Case& c : cases) {
    std::string bad = good;
    bad[c.offset] = c.value;
    BinaryFrameParser parser;
    parser.Feed(bad);
    BinaryFrame frame;
    EXPECT_EQ(parser.Next(&frame), BinaryFrameParser::Result::kError)
        << c.name;
    EXPECT_FALSE(parser.error().empty()) << c.name;
    parser.Feed(good);
    EXPECT_EQ(parser.Next(&frame), BinaryFrameParser::Result::kError)
        << c.name << " should stay poisoned";
  }
}

// ---- Replication frames --------------------------------------------------
// The framing layer accepts the replication types (kSubscribe,
// kLogChunk, kHeartbeat, kSnapshot) everywhere — validity is a port
// policy, not a parser policy — so they get the same chunking and
// truncation abuse as the browse frames.

TEST(ReplicationWireTest, FramedPayloadsRoundTripUnderDribble) {
  SubscribeRequest sub;
  sub.pos = WalPosition{3, 7, 4096};
  LogChunk chunk;
  chunk.pos = WalPosition{1, 2, 24};
  chunk.primary_epoch = 41;
  chunk.primary_epoch_ms = 1'700'000'000'123ull;
  chunk.behind_bytes = 99;
  chunk.records = std::string("\x01\x02raw record bytes\x00with nul", 27);
  Heartbeat hb;
  hb.primary_epoch = 42;
  hb.primary_epoch_ms = 1'700'000'000'456ull;
  hb.behind_bytes = 0;
  SnapshotChunk snap;
  snap.total_bytes = 1 << 20;
  snap.chunk_offset = 512;
  snap.primary_epoch = 43;
  snap.primary_epoch_ms = 7;
  snap.pos = WalPosition{2, 5, 24};
  snap.data = std::string(777, 's');

  const std::string wire =
      EncodeFrame(FrameType::kSubscribe, 1, EncodeSubscribe(sub)) +
      EncodeFrame(FrameType::kLogChunk, 0, EncodeLogChunk(chunk)) +
      EncodeFrame(FrameType::kHeartbeat, 0, EncodeHeartbeat(hb)) +
      EncodeFrame(FrameType::kSnapshot, 0, EncodeSnapshotChunk(snap));

  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    BinaryFrameParser parser;
    std::vector<BinaryFrame> frames;
    size_t pos = 0;
    while (pos < wire.size()) {
      const size_t n = std::min(wire.size() - pos,
                                static_cast<size_t>(1 + rng.Uniform(61)));
      parser.Feed(std::string_view(wire).substr(pos, n));
      pos += n;
      BinaryFrame f;
      while (parser.Next(&f) == BinaryFrameParser::Result::kFrame) {
        frames.push_back(f);
      }
      ASSERT_TRUE(parser.error().empty()) << parser.error();
    }
    ASSERT_EQ(frames.size(), 4u);

    SubscribeRequest sub2;
    ASSERT_TRUE(DecodeSubscribe(frames[0].payload, &sub2).ok());
    EXPECT_EQ(sub2.pos, sub.pos);
    LogChunk chunk2;
    ASSERT_TRUE(DecodeLogChunk(frames[1].payload, &chunk2).ok());
    EXPECT_EQ(chunk2.pos, chunk.pos);
    EXPECT_EQ(chunk2.primary_epoch, chunk.primary_epoch);
    EXPECT_EQ(chunk2.primary_epoch_ms, chunk.primary_epoch_ms);
    EXPECT_EQ(chunk2.behind_bytes, chunk.behind_bytes);
    EXPECT_EQ(chunk2.records, chunk.records);
    Heartbeat hb2;
    ASSERT_TRUE(DecodeHeartbeat(frames[2].payload, &hb2).ok());
    EXPECT_EQ(hb2.primary_epoch, hb.primary_epoch);
    EXPECT_EQ(hb2.behind_bytes, hb.behind_bytes);
    SnapshotChunk snap2;
    ASSERT_TRUE(DecodeSnapshotChunk(frames[3].payload, &snap2).ok());
    EXPECT_EQ(snap2.total_bytes, snap.total_bytes);
    EXPECT_EQ(snap2.chunk_offset, snap.chunk_offset);
    EXPECT_EQ(snap2.pos, snap.pos);
    EXPECT_EQ(snap2.data, snap.data);
  }
}

TEST(ReplicationWireTest, TruncatedPayloadsAreErrorsNotCrashes) {
  SubscribeRequest sub;
  sub.pos = WalPosition{1, 1, 24};
  const std::string sub_wire = EncodeSubscribe(sub);
  for (size_t cut = 0; cut < sub_wire.size(); ++cut) {
    SubscribeRequest out;
    EXPECT_FALSE(DecodeSubscribe(sub_wire.substr(0, cut), &out).ok());
  }
  // A trailing byte is as malformed as a missing one (exact-size
  // payloads catch frame/payload confusion).
  SubscribeRequest out;
  EXPECT_FALSE(DecodeSubscribe(sub_wire + "x", &out).ok());

  Heartbeat hb;
  const std::string hb_wire = EncodeHeartbeat(hb);
  for (size_t cut = 0; cut < hb_wire.size(); ++cut) {
    Heartbeat hout;
    EXPECT_FALSE(DecodeHeartbeat(hb_wire.substr(0, cut), &hout).ok());
  }

  // Variable-length payloads: everything below the fixed header is an
  // error; at or past it, the tail is the record/data bytes.
  LogChunk chunk;
  chunk.records = "rr";
  const std::string chunk_wire = EncodeLogChunk(chunk);
  const size_t chunk_header = chunk_wire.size() - chunk.records.size();
  for (size_t cut = 0; cut < chunk_header; ++cut) {
    LogChunk cout_;
    EXPECT_FALSE(DecodeLogChunk(chunk_wire.substr(0, cut), &cout_).ok());
  }
  SnapshotChunk snap;
  snap.data = "dd";
  const std::string snap_wire = EncodeSnapshotChunk(snap);
  const size_t snap_header = snap_wire.size() - snap.data.size();
  for (size_t cut = 0; cut < snap_header; ++cut) {
    SnapshotChunk sout;
    EXPECT_FALSE(DecodeSnapshotChunk(snap_wire.substr(0, cut), &sout).ok());
  }
}

// ---- Over-the-wire torture ----------------------------------------------

class ProtocolTortureTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    options.port = 0;
    server_ = std::make_unique<LsdServer>(&store_, options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  SharedStore store_;
  std::unique_ptr<LsdServer> server_;
};

TEST_F(ProtocolTortureTest, PipelinedRequestsCorrelateById) {
  StartServer();
  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  // Many requests in flight at once, ids deliberately not 0..n.
  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    const uint64_t id = 1000 + 7 * static_cast<uint64_t>(i);
    ASSERT_TRUE(client.SendRequest(id, "ping").ok());
  }
  for (int i = 0; i < kRequests; ++i) {
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->request_id, 1000 + 7 * static_cast<uint64_t>(i));
    EXPECT_EQ(static_cast<int>(reply->type),
              static_cast<int>(FrameType::kOk));
    EXPECT_EQ(reply->payload, "pong\n");
  }
}

TEST_F(ProtocolTortureTest, DribbledBinaryRequestIsServed) {
  StartServer();
  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  const std::string wire = EncodeFrame(FrameType::kRequest, 5, "ping");
  for (char c : wire) {
    ASSERT_TRUE(WriteAll(client.fd(), std::string_view(&c, 1)).ok());
  }
  auto reply = client.ReadReply();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->request_id, 5u);
  EXPECT_EQ(reply->payload, "pong\n");
}

TEST_F(ProtocolTortureTest, MalformedBinaryFrameClosesTheConnection) {
  StartServer();
  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  // A valid request, then garbage where the next magic should be.
  ASSERT_TRUE(client.SendRequest(1, "ping").ok());
  std::string garbage;
  garbage.push_back(static_cast<char>(kBinaryMagic0));
  garbage += "XX";  // wrong magic1/magic2
  garbage.append(17, '\0');
  ASSERT_TRUE(WriteAll(client.fd(), garbage).ok());

  // The first (valid) request may still be answered; after that the
  // server must hang up, never send a partial frame, and never crash.
  auto first = client.ReadReply();
  if (first.ok()) {
    EXPECT_EQ(first->request_id, 1u);
    auto second = client.ReadReply();
    EXPECT_FALSE(second.ok());
  }
}

TEST_F(ProtocolTortureTest, ReplicationFrameOnBrowsePortClosesTheConnection) {
  StartServer();
  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  // kSubscribe parses fine but only the replication port honors it;
  // the browse port treats it like any other non-request frame.
  SubscribeRequest sub;
  ASSERT_TRUE(
      WriteAll(client.fd(), EncodeFrame(FrameType::kSubscribe, 1,
                                        EncodeSubscribe(sub)))
          .ok());
  auto reply = client.ReadReply();
  EXPECT_FALSE(reply.ok());
}

TEST_F(ProtocolTortureTest, NonRequestFrameClosesTheConnection) {
  StartServer();
  BinaryClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  // A well-formed frame of a response type is a protocol violation from
  // a client.
  ASSERT_TRUE(
      WriteAll(client.fd(), EncodeFrame(FrameType::kOk, 1, "nope")).ok());
  auto reply = client.ReadReply();
  EXPECT_FALSE(reply.ok());
}

TEST_F(ProtocolTortureTest, TextLinesSurviveDribbleAndCoalesce) {
  StartServer();
  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  // Dribbled line.
  for (char c : std::string("ping\n")) {
    ASSERT_TRUE(WriteAll(client.fd(), std::string_view(&c, 1)).ok());
  }
  auto pong = client.Read();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->payload, "pong\n");

  // Coalesced pipeline: three requests in one write, answered in order.
  ASSERT_TRUE(WriteAll(client.fd(), "ping\r\nno-such-verb\nping\n").ok());
  auto first = client.Read();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->ok);
  auto second = client.Read();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->ok);  // in-band error, connection survives
  auto third = client.Read();
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->ok);
}

TEST_F(ProtocolTortureTest, OverlongTextLineClosesTheConnection) {
  ServerOptions options;
  options.max_text_line_bytes = 1024;
  StartServer(options);
  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  // 64 KiB with no newline: a flood, not a request.
  std::string flood(64 * 1024, 'a');
  (void)WriteAll(client.fd(), flood);  // may fail once the server closes
  auto reply = client.Read();
  EXPECT_FALSE(reply.ok());
}

TEST_F(ProtocolTortureTest, RandomGarbageNeverCrashesTheServer) {
  StartServer();
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    BinaryClient client(server_->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Greeting().ok());
    std::string noise;
    // Start with the magic byte so the connection sniffs binary.
    noise.push_back(static_cast<char>(kBinaryMagic0));
    const size_t len = 1 + rng.Uniform(512);
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)WriteAll(client.fd(), noise);
    // Half-close so a trailing incomplete frame cannot park the
    // connection waiting for more bytes; then drain until the server
    // hangs up. Whatever the noise decoded to, replies or a clean EOF
    // are the only acceptable outcomes.
    client.FinishWriting();
    while (client.ReadReply().ok()) {
    }
  }
  // The server is still alive and serving.
  TextClient survivor(server_->port());
  ASSERT_TRUE(survivor.connected());
  ASSERT_TRUE(survivor.Greeting().ok());
  auto pong = survivor.Send("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok);
}

}  // namespace
}  // namespace lsd
