// Test-only blocking clients for the two lsd wire protocols. The text
// client mirrors the one in server_test.cc; the binary client reads the
// (always-text) greeting first, then switches the connection into
// binary mode with its first request frame.
#ifndef LSD_TESTS_SERVER_WIRE_CLIENT_H_
#define LSD_TESTS_SERVER_WIRE_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include "server/protocol.h"

namespace lsd {
namespace testing_wire {

inline int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Text-protocol client: one request line, one framed response.
class TextClient {
 public:
  explicit TextClient(uint16_t port) : fd_(ConnectLoopback(port)) {
    if (fd_ >= 0) reader_ = std::make_unique<LineReader>(fd_);
  }
  ~TextClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  StatusOr<WireResponse> Greeting() { return ReadResponse(reader_.get()); }
  StatusOr<WireResponse> Read() { return ReadResponse(reader_.get()); }

  StatusOr<WireResponse> Send(const std::string& line) {
    LSD_RETURN_IF_ERROR(WriteAll(fd_, line + "\n"));
    return ReadResponse(reader_.get());
  }

 private:
  int fd_ = -1;
  std::unique_ptr<LineReader> reader_;
};

// Binary-protocol client with explicit request ids, so tests can
// pipeline any number of requests and correlate the responses.
class BinaryClient {
 public:
  explicit BinaryClient(uint16_t port) : fd_(ConnectLoopback(port)) {}
  ~BinaryClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // The greeting is a text frame even for binary clients.
  StatusOr<WireResponse> Greeting() {
    LineReader reader(fd_);
    return ReadResponse(&reader);
  }

  Status SendRequest(uint64_t id, std::string_view command) {
    return WriteAll(fd_, EncodeFrame(FrameType::kRequest, id, command));
  }

  StatusOr<BinaryFrame> ReadReply() { return ReadFrame(fd_, &parser_); }

  // Half-close: no more requests, but replies can still be read.
  void FinishWriting() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  // Convenience: one request, one correlated reply.
  StatusOr<BinaryFrame> Call(uint64_t id, std::string_view command) {
    LSD_RETURN_IF_ERROR(SendRequest(id, command));
    return ReadReply();
  }

 private:
  int fd_ = -1;
  BinaryFrameParser parser_;
};

}  // namespace testing_wire
}  // namespace lsd

#endif  // LSD_TESTS_SERVER_WIRE_CLIENT_H_
