// Background compaction must be invisible: any interleaving of commits
// and merges yields a store whose closure — and whose answers to the
// Sec 5.2 golden suite — are bit-identical to a never-compacted twin
// fed the same commit sequence. Compaction rearranges storage
// generations; it must never add, drop, or reorder a fact.
#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/shared_store.h"
#include "util/random.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

// The full stored closure (base ∪ derived), sorted. Virtual layers
// (ISA axioms, comparators) only answer bound-relationship patterns, so
// the wildcard enumeration below is exactly the materialized tiers.
std::vector<Fact> EnumerateClosure(const LooseDb& db) {
  auto view = db.View();
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  std::vector<Fact> out;
  if (view.ok()) {
    (*view)->ForEach(Pattern(), [&](const Fact& f) {
      out.push_back(f);
      return true;
    });
  }
  std::sort(out.begin(), out.end(), OrderSrt());
  return out;
}

// The paper's Sec 5.2 probing menu, as a comparable digest.
std::set<std::string> GoldenProbeDigest(LooseDb& db) {
  std::set<std::string> digest;
  auto probe = db.Probe("(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");
  EXPECT_TRUE(probe.ok()) << probe.status().ToString();
  if (!probe.ok()) return digest;
  for (const auto& s : probe->successes) {
    for (const auto& row : s.result.rows) {
      for (EntityId e : row) digest.insert(db.entities().Name(e));
    }
  }
  digest.insert("successes=" + std::to_string(probe->successes.size()));
  return digest;
}

Status CommitBatch(SharedStore* store, const std::vector<Fact>& batch,
                   const std::vector<std::string>& names) {
  auto committed = store->Commit([&](LooseDb& db) {
    for (const Fact& f : batch) {
      db.Assert(names[f.source], names[f.relationship], names[f.target]);
    }
    return Status::OK();
  });
  return committed.status();
}

TEST(CompactionPropertyTest, RandomInterleavingsMatchNeverCompactedTwin) {
  // A small symbol universe so batches collide with frozen facts,
  // overlay facts, and each other.
  std::vector<std::string> names;
  for (int i = 0; i < 14; ++i) names.push_back("SYM-" + std::to_string(i));

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    SharedStore compacted;
    SharedStore reference;
    for (SharedStore* s : {&compacted, &reference}) {
      ASSERT_TRUE(s->Commit([](LooseDb& db) {
                     workload::BuildCampusDomain(&db);
                     return Status::OK();
                   })
                      .ok());
    }

    std::vector<Fact> asserted;  // retract pool, kept in sync twice
    for (int step = 0; step < 60; ++step) {
      const uint32_t roll = rng.Uniform(10);
      if (roll < 7 || asserted.empty()) {
        std::vector<Fact> batch;
        const size_t n = 1 + rng.Uniform(5);
        for (size_t i = 0; i < n; ++i) {
          batch.push_back(Fact(rng.Uniform(names.size()), rng.Uniform(5),
                               rng.Uniform(names.size())));
        }
        ASSERT_TRUE(CommitBatch(&compacted, batch, names).ok());
        ASSERT_TRUE(CommitBatch(&reference, batch, names).ok());
        asserted.insert(asserted.end(), batch.begin(), batch.end());
      } else if (roll < 8) {
        // Retraction: poisons the incremental-closure path, forcing the
        // recompute fallback to coexist with compaction.
        const Fact victim = asserted[rng.Uniform(asserted.size())];
        for (SharedStore* s : {&compacted, &reference}) {
          auto committed = s->Commit([&](LooseDb& db) {
            db.Retract(names[victim.source], names[victim.relationship],
                       names[victim.target]);
            return Status::OK();
          });
          ASSERT_TRUE(committed.ok()) << committed.status().ToString();
        }
      } else {
        ASSERT_TRUE(compacted.CompactOnce().ok());
      }
      if (step % 15 == 14) {
        EXPECT_EQ(EnumerateClosure(compacted.snapshot()->db()),
                  EnumerateClosure(reference.snapshot()->db()))
            << "closures diverged at step " << step;
      }
    }

    // One final merge-down, then the twins must be indistinguishable.
    ASSERT_TRUE(compacted.CompactOnce().ok());
    LooseDb& a = compacted.snapshot()->db();
    LooseDb& b = reference.snapshot()->db();
    EXPECT_EQ(EnumerateClosure(a), EnumerateClosure(b));
    EXPECT_EQ(GoldenProbeDigest(a), GoldenProbeDigest(b));
    for (const char* q :
         {"(?S, ENROLLED-IN, ?C)", "(STUDENT, LOVE, ?Z)",
          "(?Z, COSTS, CHEAP)", "(?X, ISA, STUDENT)"}) {
      auto ra = a.Query(q);
      auto rb = b.Query(q);
      ASSERT_TRUE(ra.ok() && rb.ok()) << q;
      EXPECT_EQ(ra->rows, rb->rows) << q;
    }
  }
}

TEST(CompactionPropertyTest, CompactOnceOnQuiescentStoreIsIdempotent) {
  SharedStore store;
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    workload::BuildCampusDomain(&db);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(store.CompactOnce().ok());
  const uint64_t gen = store.snapshot()->db().storage_generation();
  const std::vector<Fact> before = EnumerateClosure(store.snapshot()->db());
  // Fully merged: another pass finds an empty plan, publishes nothing.
  uint64_t bytes = 0, facts = 0;
  ASSERT_TRUE(store.CompactOnce(&bytes, &facts).ok());
  EXPECT_EQ(facts, 0u);
  EXPECT_EQ(store.snapshot()->db().storage_generation(), gen);
  EXPECT_EQ(EnumerateClosure(store.snapshot()->db()), before);
}

// The background merge thread racing live writers and pinned readers:
// an aggressive compactor (merge on any overlay byte, 1ms poll) must
// not lose, duplicate, or tear anything.
TEST(CompactionPropertyTest, BackgroundMergesRaceWritersAndReaders) {
  SharedStore compacted;
  SharedStore reference;
  for (SharedStore* s : {&compacted, &reference}) {
    ASSERT_TRUE(s->Commit([](LooseDb& db) {
                   workload::BuildCampusDomain(&db);
                   return Status::OK();
                 })
                    .ok());
  }

  CompactionOptions aggressive;
  aggressive.min_runs = 1;
  aggressive.overlay_ratio = 0.0;
  aggressive.min_overlay_bytes = 1;
  aggressive.poll_ms = 1;
  aggressive.backpressure_runs = 0;  // never throttle this test
  ASSERT_TRUE(compacted.EnableCompaction(aggressive).ok());
  EXPECT_TRUE(compacted.compaction_enabled());

  std::atomic<bool> done{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&compacted, &done, &reader_errors] {
      while (!done.load()) {
        EpochPtr pinned = compacted.snapshot();
        auto result = pinned->db().Query("(?S, ENROLLED-IN, ?C)");
        if (!result.ok() || result->rows.empty()) ++reader_errors;
        std::this_thread::yield();
      }
    });
  }

  for (int step = 0; step < 120; ++step) {
    std::vector<Fact> batch;
    for (int i = 0; i < 3; ++i) {
      batch.push_back(Fact((step * 3 + i) % 40, step % 5, (step + i) % 40));
    }
    std::vector<std::string> names;
    for (int i = 0; i < 40; ++i) names.push_back("CHURN-" + std::to_string(i));
    ASSERT_TRUE(CommitBatch(&compacted, batch, names).ok());
    ASSERT_TRUE(CommitBatch(&reference, batch, names).ok());
  }
  done.store(true);
  for (auto& t : readers) t.join();
  const CompactionStats st = compacted.compaction_stats();
  compacted.StopCompaction();
  EXPECT_FALSE(compacted.compaction_enabled());
  EXPECT_GE(st.merges, 1u) << "the background thread never merged";
  EXPECT_EQ(st.failures, 0u);
  EXPECT_EQ(reader_errors.load(), 0);

  ASSERT_TRUE(compacted.CompactOnce().ok());
  EXPECT_EQ(EnumerateClosure(compacted.snapshot()->db()),
            EnumerateClosure(reference.snapshot()->db()));
  EXPECT_EQ(GoldenProbeDigest(compacted.snapshot()->db()),
            GoldenProbeDigest(reference.snapshot()->db()));
}

}  // namespace
}  // namespace lsd
