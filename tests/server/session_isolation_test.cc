// Satellite: two concurrent sessions probing the paper's campus
// example (Sec 5.2) each get the exact paper retraction menu,
// unaffected by the other session's hypothetical retractions. Run
// under TSan in CI.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/session.h"
#include "server/shared_store.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

constexpr char kPaperQuery[] = "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)";
constexpr char kFreshmanSuccess[] = "FRESHMAN instead of STUDENT";
constexpr char kCheapSuccess[] = "CHEAP instead of FREE";

class SessionIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto seeded = store_.Commit([](LooseDb& db) {
      workload::BuildCampusDomain(&db);
      return Status::OK();
    });
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  }

  std::string Run(ServerSession& session, std::string_view line) {
    auto result = session.Execute(line);
    EXPECT_TRUE(result.ok()) << line << ": " << result.status().ToString();
    return result.ok() ? *result : std::string();
  }

  SharedStore store_;
};

TEST_F(SessionIsolationTest, PaperMenuComesOutOfTheServerSession) {
  ServerSession session(1, &store_);
  std::string menu = Run(session, kPaperQuery);
  EXPECT_NE(menu.find("Query failed. Retrying..."), std::string::npos);
  EXPECT_NE(menu.find(kFreshmanSuccess), std::string::npos);
  EXPECT_NE(menu.find(kCheapSuccess), std::string::npos);
  EXPECT_NE(menu.find("You may select."), std::string::npos);
}

TEST_F(SessionIsolationTest, HypotheticalRetractionIsSessionLocal) {
  ServerSession alice(1, &store_);
  ServerSession bob(2, &store_);

  // Alice hypothesizes away the fact behind the FRESHMAN success.
  Run(alice, "hypo retract (MOVIE-NIGHT, COSTS, FREE)");
  EXPECT_EQ(alice.overlay_size(), 1u);

  std::string alice_menu = Run(alice, kPaperQuery);
  EXPECT_EQ(alice_menu.find(kFreshmanSuccess), std::string::npos)
      << alice_menu;
  EXPECT_NE(alice_menu.find(kCheapSuccess), std::string::npos);

  // Bob still gets the paper's full two-success menu.
  std::string bob_menu = Run(bob, kPaperQuery);
  EXPECT_NE(bob_menu.find(kFreshmanSuccess), std::string::npos);
  EXPECT_NE(bob_menu.find(kCheapSuccess), std::string::npos);

  // And dropping the hypothesis restores Alice's menu.
  Run(alice, "hypo clear");
  std::string restored = Run(alice, kPaperQuery);
  EXPECT_NE(restored.find(kFreshmanSuccess), std::string::npos);
}

TEST_F(SessionIsolationTest, HypotheticalRetractionOfRealMenuEntry) {
  // Retracting the CONCERT-PASS pricing removes the CHEAP success: the
  // hypothesis propagates through probing exactly as a real retraction.
  ServerSession session(1, &store_);
  Run(session, "hypo retract (CONCERT-PASS, COSTS, CHEAP)");
  std::string menu = Run(session, kPaperQuery);
  EXPECT_EQ(menu.find(kCheapSuccess), std::string::npos) << menu;
  EXPECT_NE(menu.find(kFreshmanSuccess), std::string::npos);
}

TEST_F(SessionIsolationTest, HypotheticalRetractionMustNameAssertedFact) {
  ServerSession session(1, &store_);
  auto result = session.Execute("hypo retract (TOM, ENROLLED-IN, ART1)");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.overlay_size(), 0u);
}

TEST_F(SessionIsolationTest, OverlayRebasesOntoNewEpochs) {
  ServerSession alice(1, &store_);
  ServerSession bob(2, &store_);

  Run(alice, "hypo retract (MOVIE-NIGHT, COSTS, FREE)");
  std::string before = Run(alice, kPaperQuery);
  EXPECT_EQ(before.find(kFreshmanSuccess), std::string::npos);

  // Bob commits a new free thing freshmen love. Alice's overlay must
  // rebase onto the new epoch: her hypothesis still hides MOVIE-NIGHT,
  // but the FRESHMAN success reappears via PIZZA-NIGHT.
  Run(bob, "assert (FRESHMAN, LOVE, PIZZA-NIGHT)");
  Run(bob, "assert (PIZZA-NIGHT, COSTS, FREE)");

  std::string after = Run(alice, kPaperQuery);
  EXPECT_NE(after.find(kFreshmanSuccess), std::string::npos) << after;
  // The hypothesis itself survives the rebase.
  EXPECT_EQ(alice.overlay_size(), 1u);
  std::string listed = Run(alice, "hypo list");
  EXPECT_NE(listed.find("retract (MOVIE-NIGHT, COSTS, FREE)"),
            std::string::npos);
}

TEST_F(SessionIsolationTest, TrailsAreSessionLocal) {
  ServerSession alice(1, &store_);
  ServerSession bob(2, &store_);
  Run(alice, "visit TOM");
  Run(alice, "visit CS100");
  Run(bob, "visit SUE");
  std::string back = Run(alice, "back");
  EXPECT_NE(back.find("[TOM]"), std::string::npos) << back;
  auto bob_back = bob.Execute("back");
  EXPECT_FALSE(bob_back.ok());  // Bob only ever visited one entity
}

// The acceptance-criteria concurrency test: sessions with different
// hypothetical overlays probe the same shared epochs from different
// threads, interleaved with writer commits of unrelated facts. Every
// probe must return that session's exact menu.
TEST_F(SessionIsolationTest, ConcurrentSessionsKeepExactPaperMenus) {
  constexpr int kIterations = 12;

  std::thread alice_thread([this] {
    ServerSession alice(1, &store_);
    Run(alice, "hypo retract (MOVIE-NIGHT, COSTS, FREE)");
    for (int i = 0; i < kIterations; ++i) {
      std::string menu = Run(alice, kPaperQuery);
      EXPECT_EQ(menu.find(kFreshmanSuccess), std::string::npos) << menu;
      EXPECT_NE(menu.find(kCheapSuccess), std::string::npos) << menu;
    }
  });

  std::thread bob_thread([this] {
    ServerSession bob(2, &store_);
    for (int i = 0; i < kIterations; ++i) {
      std::string menu = Run(bob, kPaperQuery);
      EXPECT_NE(menu.find(kFreshmanSuccess), std::string::npos) << menu;
      EXPECT_NE(menu.find(kCheapSuccess), std::string::npos) << menu;
    }
  });

  std::thread writer_thread([this] {
    ServerSession writer(3, &store_);
    for (int i = 0; i < kIterations / 2; ++i) {
      // Unrelated facts: new epochs keep appearing under both browsers
      // without perturbing the campus example.
      Run(writer, "assert (AUDIT-" + std::to_string(i) + ", MARKS, DONE)");
    }
  });

  alice_thread.join();
  bob_thread.join();
  writer_thread.join();
}

}  // namespace
}  // namespace lsd
