#include "server/shared_store.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "workload/university_domain.h"

namespace lsd {
namespace {

TEST(SharedStoreTest, BootstrapEpochIsPublishedImmediately) {
  SharedStore store;
  EpochPtr epoch = store.snapshot();
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->sequence(), 0u);
  // The bootstrap epoch holds only the standard-rules seed facts; no
  // user entities yet.
  EXPECT_FALSE(epoch->db().entities().Lookup("TOM").has_value());
  EXPECT_EQ(store.commits(), 0u);
}

TEST(SharedStoreTest, CommitPublishesNewEpoch) {
  SharedStore store;
  size_t base = store.snapshot()->db().store().size();
  auto committed = store.Commit([](LooseDb& db) {
    db.Assert("TOM", "ENROLLED-IN", "CS100");
    return Status::OK();
  });
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ((*committed)->sequence(), 1u);
  EXPECT_EQ((*committed)->db().store().size(), base + 1);
  EXPECT_EQ(store.snapshot()->sequence(), 1u);
  EXPECT_EQ(store.commits(), 1u);
}

// The acceptance-criteria test: a reader pinned to epoch N keeps an
// unchanged view while a writer publishes N+1 mid-request.
TEST(SharedStoreTest, PinnedReaderUnaffectedByConcurrentCommit) {
  SharedStore store;
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    workload::BuildCampusDomain(&db);
                    return Status::OK();
                  })
                  .ok());

  EpochPtr pinned = store.snapshot();
  size_t facts_before = pinned->db().store().size();
  uint64_t version_before = pinned->store_version();

  auto committed = store.Commit([](LooseDb& db) {
    db.Assert("SUE", "ENROLLED-IN", "CS100");
    return Status::OK();
  });
  ASSERT_TRUE(committed.ok());

  // The pinned epoch is frozen: same facts, same version key, and the
  // new fact is invisible through it.
  EXPECT_EQ(pinned->db().store().size(), facts_before);
  EXPECT_EQ(pinned->store_version(), version_before);
  auto old_result = pinned->db().Query("(SUE, ENROLLED-IN, ?C)");
  ASSERT_TRUE(old_result.ok());
  EXPECT_EQ(old_result->rows.size(), 1u);  // MATH101 only

  auto new_result = (*committed)->db().Query("(SUE, ENROLLED-IN, ?C)");
  ASSERT_TRUE(new_result.ok());
  EXPECT_EQ(new_result->rows.size(), 2u);
  EXPECT_GT((*committed)->sequence(), pinned->sequence());
}

TEST(SharedStoreTest, FailedMutationPublishesNothing) {
  SharedStore store;
  EpochPtr before = store.snapshot();
  size_t base = before->db().store().size();
  auto failed = store.Commit([](LooseDb& db) {
    db.Assert("A", "R", "B");
    return Status::InvalidArgument("boom");
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(store.snapshot(), before);
  EXPECT_EQ(store.commits(), 0u);
  // All-or-nothing: the fact asserted before the failure is gone.
  EXPECT_EQ(store.snapshot()->db().store().size(), base);
  EXPECT_FALSE(store.snapshot()->db().entities().Lookup("A").has_value());
}

TEST(SharedStoreTest, AssertAfterRetractStillPublishes) {
  // Clones are built by replaying facts, so their insert count alone
  // can collide with the tip's mutation clock after a retract; the
  // no-op check must not mistake such a commit for "nothing changed".
  SharedStore store;
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    db.Assert("A", "R", "B");
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    return db.Retract("A", "R", "B");
                  })
                  .ok());
  const uint64_t seq = store.snapshot()->sequence();
  auto committed = store.Commit([](LooseDb& db) {
    db.Assert("C", "R", "D");
    return Status::OK();
  });
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ((*committed)->sequence(), seq + 1);
  auto r = store.snapshot()->db().Query("(C, R, ?X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(SharedStoreTest, NoOpCommitSkipsPublication) {
  SharedStore store;
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    db.Assert("A", "R", "B");
                    return Status::OK();
                  })
                  .ok());
  EpochPtr before = store.snapshot();
  auto noop = store.Commit([](LooseDb&) { return Status::OK(); });
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(*noop, before);
  EXPECT_EQ(store.snapshot()->sequence(), 1u);
  EXPECT_EQ(store.commits(), 1u);
}

TEST(SharedStoreTest, OperatorDefinitionPublishesNewEpoch) {
  // DefineOperator does not bump the (store, rules) version keys, so
  // the commit path must also compare definition counts.
  SharedStore store;
  auto committed = store.Commit([](LooseDb& db) {
    return db.DefineOperator("CLASSMATES(?A, ?B) := "
                             "(?A, ENROLLED-IN, ?C) and (?B, ENROLLED-IN, ?C)");
  });
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ((*committed)->sequence(), 1u);
}

TEST(SharedStoreTest, CommitsCarryRulesAndDefinitionsForward) {
  SharedStore store;
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    workload::BuildCampusDomain(&db);
                    return db.DefineRule(
                        "teaches: (?C, TAUGHT-BY, ?P) => (?P, TEACHES, ?C)",
                        RuleKind::kInference);
                  })
                  .ok());
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    db.Assert("CS200", "TAUGHT-BY", "HARRY");
                    return Status::OK();
                  })
                  .ok());
  // The rule defined in epoch 1 still fires on the fact added in epoch 2.
  auto result = store.snapshot()->db().Query("(HARRY, TEACHES, CS200)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Success());
}

// Writers and readers race freely: every commit lands, every reader
// sees an internally consistent epoch. Run under TSan.
TEST(SharedStoreTest, ConcurrentCommittersAndPinnedReaders) {
  SharedStore store;
  ASSERT_TRUE(store
                  .Commit([](LooseDb& db) {
                    workload::BuildCampusDomain(&db);
                    return Status::OK();
                  })
                  .ok());
  size_t base_facts = store.snapshot()->db().store().size();

  constexpr int kWriters = 3;
  constexpr int kCommitsPerWriter = 4;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &reader_errors] {
      while (!stop.load()) {
        EpochPtr pinned = store.snapshot();
        size_t size_at_pin = pinned->db().store().size();
        auto probe = pinned->db().Probe("(STUDENT, LOVE, ?Z) and "
                                        "(?Z, COSTS, FREE)");
        if (!probe.ok() || probe->successes.size() != 2) {
          reader_errors.fetch_add(1);
        }
        // The pinned epoch never moves underneath the request.
        if (pinned->db().store().size() != size_at_pin) {
          reader_errors.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int c = 0; c < kCommitsPerWriter; ++c) {
        std::string source =
            "W" + std::to_string(w) + "-C" + std::to_string(c);
        auto committed = store.Commit([&source](LooseDb& db) {
          db.Assert(source, "MARKS", "DONE");
          return Status::OK();
        });
        ASSERT_TRUE(committed.ok()) << committed.status().ToString();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(store.snapshot()->db().store().size(),
            base_facts + kWriters * kCommitsPerWriter);
  // Group commit may coalesce concurrent writers into one epoch, so the
  // epoch count is bounded, not exact: at least one more than the seed,
  // at most one per commit call.
  EXPECT_GE(store.snapshot()->sequence(), 2u);
  EXPECT_LE(store.snapshot()->sequence(),
            1u + kWriters * kCommitsPerWriter);
  EXPECT_EQ(store.commits(), store.snapshot()->sequence());
}

// Heavier write-side contention: every commit must land exactly once
// (all-or-nothing per slot), every returned epoch must already contain
// its own write, and epochs returned to one thread must be strictly
// ordered. Run under TSan.
TEST(SharedStoreTest, GroupCommitContention) {
  SharedStore store;
  size_t base_facts = store.snapshot()->db().store().size();

  constexpr int kWriters = 8;
  constexpr int kCommitsPerWriter = 8;
  std::atomic<int> ordering_errors{0};
  std::atomic<int> visibility_errors{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, &ordering_errors, &visibility_errors, w] {
      uint64_t last_seq = 0;
      for (int c = 0; c < kCommitsPerWriter; ++c) {
        std::string source =
            "G" + std::to_string(w) + "-C" + std::to_string(c);
        auto committed = store.Commit([&source](LooseDb& db) {
          db.Assert(source, "MARKS", "DONE");
          return Status::OK();
        });
        ASSERT_TRUE(committed.ok()) << committed.status().ToString();
        // The epoch handed back covers this slot's own write.
        auto seen = (*committed)->db().Query("(" + source + ", MARKS, ?X)");
        if (!seen.ok() || !seen->Success()) visibility_errors.fetch_add(1);
        // A later commit from this thread can never observe an epoch at
        // or before the one its previous commit produced.
        uint64_t seq = (*committed)->sequence();
        if (seq <= last_seq && c > 0) ordering_errors.fetch_add(1);
        if (c == 0 && seq == 0) ordering_errors.fetch_add(1);
        last_seq = seq;
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(ordering_errors.load(), 0);
  EXPECT_EQ(visibility_errors.load(), 0);
  EXPECT_EQ(store.snapshot()->db().store().size(),
            base_facts + kWriters * kCommitsPerWriter);

  GroupCommitStats stats = store.group_stats();
  EXPECT_EQ(stats.slots_acked, uint64_t{kWriters * kCommitsPerWriter});
  EXPECT_EQ(stats.slots_rejected, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.groups, stats.slots_acked);
  EXPECT_EQ(store.commits(), store.snapshot()->sequence());
}

// A failing slot is charged to its caller alone: the leader replays the
// surviving slots on a fresh clone, so the group still publishes and
// none of the failed closure's effects leak. The first committer parks
// inside its own closure until two more callers are queued behind it,
// which forces a real multi-slot group deterministically.
TEST(SharedStoreTest, FailingSlotDoesNotPoisonItsGroup) {
  SharedStore store;
  size_t base_facts = store.snapshot()->db().store().size();

  std::atomic<bool> parked{false};
  std::thread blocker([&store, &parked] {
    auto committed = store.Commit([&store, &parked](LooseDb& db) {
      db.Assert("FIRST", "MARKS", "DONE");
      parked.store(true);
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (store.group_stats().queue_depth < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::OK();
    });
    ASSERT_TRUE(committed.ok());
  });
  // The blocker must own leadership before anyone else enqueues, or the
  // forced grouping below is not guaranteed.
  while (!parked.load()) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // These two enqueue while the blocker's group is mid-flight, so the
  // leader drains them into one follow-up group.
  std::thread failing([&store] {
    auto failed = store.Commit([](LooseDb& db) {
      db.Assert("BAD", "MARKS", "DONE");  // must not survive
      return Status::InvalidArgument("rejected slot");
    });
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
  });
  std::thread succeeding([&store] {
    auto committed = store.Commit([](LooseDb& db) {
      db.Assert("SECOND", "MARKS", "DONE");
      return Status::OK();
    });
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    // The survivor's epoch has its own write but nothing from the
    // rejected slot, even though both may share a group.
    EXPECT_TRUE((*committed)->db().entities().Lookup("SECOND").has_value());
    EXPECT_FALSE((*committed)->db().entities().Lookup("BAD").has_value());
  });

  blocker.join();
  failing.join();
  succeeding.join();

  EXPECT_EQ(store.snapshot()->db().store().size(), base_facts + 2);
  EXPECT_FALSE(store.snapshot()->db().entities().Lookup("BAD").has_value());

  GroupCommitStats stats = store.group_stats();
  EXPECT_EQ(stats.slots_acked, 2u);
  EXPECT_EQ(stats.slots_rejected, 1u);
  // The parked leader guarantees the two trailing callers shared one
  // group, so coalescing really happened.
  EXPECT_GE(stats.max_group, 2u);
  EXPECT_LE(stats.groups, 2u);
}

}  // namespace
}  // namespace lsd
