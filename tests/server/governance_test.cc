// Resource governance end-to-end: hard request deadlines killing
// poison queries with typed errors (connection survives), step budgets,
// per-session cumulative budgets, shed-under-overload policy, the
// starvation regression (poison queries must not starve cheap probes),
// the cancelled-evaluation-leaves-no-trace property, and cancellation
// racing the group-commit WAL path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"
#include "server/shared_store.h"
#include "wire_client.h"
#include "util/budget.h"
#include "util/failpoint.h"
#include "workload/university_domain.h"

namespace lsd {
namespace {

using testing_wire::BinaryClient;
using testing_wire::TextClient;
using Clock = std::chrono::steady_clock;

// The poison query: a chain join whose every atom matches the whole
// FEEDS edge set (no selective start for the planner) and whose middle
// expansion fans out kLayer ways before the third atom kills each
// candidate — ~kLayer^3 enumerations, zero rows, O(depth) memory.
constexpr const char* kPoison =
    "query (?A, FEEDS, ?B) and (?B, FEEDS, ?C) and (?C, FEEDS, ?D)";

// Seeds a three-layer DAG with complete bipartite FEEDS edges between
// consecutive layers; disconnected from the campus domain, so cheap
// queries never touch it. 192^3 ≈ 7M enumerations — far past any
// deadline these tests set.
void SeedPoisonGraph(SharedStore* store, int layer = 192) {
  auto seeded = store->Commit([layer](LooseDb& db) {
    const char* names[] = {"HX", "HY", "HZ"};
    for (int l = 0; l < 2; ++l) {
      for (int i = 0; i < layer; ++i) {
        for (int j = 0; j < layer; ++j) {
          char a[32], b[32];
          std::snprintf(a, sizeof(a), "%s%d", names[l], i);
          std::snprintf(b, sizeof(b), "%s%d", names[l + 1], j);
          (void)db.Assert(a, "FEEDS", b);
        }
      }
    }
    return Status::OK();
  });
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
}

void SeedCampus(SharedStore* store) {
  auto seeded = store->Commit([](LooseDb& db) {
    workload::BuildCampusDomain(&db);
    return Status::OK();
  });
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
}

class GovernanceTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<LsdServer>(&store_, options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }
  void TearDown() override {
    failpoint::ClearAll();
    if (server_ != nullptr) server_->Stop();
  }

  SharedStore store_;
  std::unique_ptr<LsdServer> server_;
};

TEST_F(GovernanceTest, DeadlineKillsPoisonTypedAndConnectionSurvives) {
  SeedCampus(&store_);
  SeedPoisonGraph(&store_);
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(100);
  StartServer(options);

  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());

  auto start = Clock::now();
  auto reply = client.Send(kPoison);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->ok);
  EXPECT_NE(reply->error.find("DeadlineExceeded"), std::string::npos)
      << reply->error;
  // The hard deadline plus the cooperative-check grace from the issue:
  // no request may outlive request_timeout + 500 ms.
  EXPECT_LE(elapsed.count(), 100 + 500) << "poison outlived the deadline";

  // A budget kill is a typed reply, not a hangup: the same connection
  // keeps serving (pipelined requests survive a governed predecessor).
  auto pong = client.Send("ping");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->ok);

  // The kill is visible in the stats governance block.
  auto stats = client.Send("stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->ok);
  EXPECT_NE(stats->payload.find("governance:"), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("deadline 1"), std::string::npos)
      << stats->payload;
  EXPECT_NE(stats->payload.find("worst request:"), std::string::npos)
      << stats->payload;
}

TEST_F(GovernanceTest, StepCapKillsWithResourceExhausted) {
  SeedCampus(&store_);
  SeedPoisonGraph(&store_);
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(0);  // steps only
  options.max_steps_per_request = 50'000;
  StartServer(options);

  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  auto reply = client.Send(kPoison);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->ok);
  EXPECT_NE(reply->error.find("ResourceExhausted"), std::string::npos)
      << reply->error;
  // Cheap queries stay under the cap.
  auto cheap = client.Send("query (TOM, ENROLLED-IN, ?C)");
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(cheap->ok) << cheap->error;
}

TEST_F(GovernanceTest, SessionStepBudgetExhausts) {
  SeedCampus(&store_);
  SeedPoisonGraph(&store_);
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(100);
  options.session_step_budget = 100'000;
  StartServer(options);

  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  // Burn the session's cumulative budget with poison queries (each is
  // deadline-killed but still charges its enumerations), then watch a
  // cheap read get refused while control verbs keep working.
  bool exhausted = false;
  for (int i = 0; i < 50 && !exhausted; ++i) {
    auto reply = client.Send(kPoison);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_FALSE(reply->ok);
    exhausted =
        reply->error.find("session step budget exhausted") != std::string::npos;
  }
  EXPECT_TRUE(exhausted) << "cumulative budget never tripped";
  auto cheap = client.Send("query (TOM, ENROLLED-IN, ?C)");
  ASSERT_TRUE(cheap.ok());
  EXPECT_FALSE(cheap->ok);
  EXPECT_NE(cheap->error.find("session step budget"), std::string::npos)
      << cheap->error;
  // Control verbs are never budget-gated: the client can still observe
  // its own state and say goodbye.
  auto session = client.Send("session");
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->ok) << session->error;
  EXPECT_NE(session->payload.find("steps:"), std::string::npos);
}

// Shed policy, tested at the session layer where DEGRADED can be set
// deterministically: while degraded, queries whose planner estimate
// exceeds the threshold are refused with a typed error before running;
// cheap probes and control verbs keep flowing.
TEST(GovernanceShedTest, DegradedShedsExpensiveKeepsCheap) {
  SharedStore store;
  SeedCampus(&store);
  SeedPoisonGraph(&store, /*layer=*/64);
  SessionRegistry registry(&store);
  GovernanceState governance;
  governance.shed_cost_threshold = 1 << 16;
  registry.set_governance(&governance);
  auto session = registry.Create(8);
  ASSERT_NE(session, nullptr);

  governance.degraded.store(true);
  auto shed = session->Execute(kPoison);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted())
      << shed.status().ToString();
  EXPECT_NE(shed.status().ToString().find("shed"), std::string::npos);
  EXPECT_EQ(governance.cancelled_shed.load(), 1u);

  // Cheap point reads (bound atoms, small estimates) are not shed.
  auto cheap = session->Execute("query (TOM, ENROLLED-IN, ?C)");
  EXPECT_TRUE(cheap.ok()) << cheap.status().ToString();
  // Control verbs never shed: they are how a client observes the very
  // overload that is rejecting its queries.
  EXPECT_TRUE(session->Execute("stats").ok());
  EXPECT_TRUE(session->Execute("session").ok());

  // Leaving DEGRADED restores the expensive query's right to run (and
  // to be killed by its own deadline instead).
  governance.degraded.store(false);
  QueryBudget budget(std::chrono::milliseconds(50));
  session->set_request_budget(&budget);
  auto governed = session->Execute(kPoison);
  session->set_request_budget(nullptr);
  ASSERT_FALSE(governed.ok());
  EXPECT_TRUE(governed.status().IsDeadlineExceeded())
      << governed.status().ToString();
}

// The property test from the issue: a cancelled evaluation must leave
// the session's trail and hypothetical overlay bit-identical to never
// having run, across every governed verb.
TEST(GovernanceSessionTest, CancelledEvaluationLeavesNoTrace) {
  SharedStore store;
  SeedCampus(&store);
  SeedPoisonGraph(&store, /*layer=*/64);
  // A hub whose neighborhood is larger than one ticker stride, so a
  // step-capped navigation is guaranteed to trip mid-scan.
  auto star = store.Commit([](LooseDb& db) {
    for (int i = 0; i < 3000; ++i) {
      char n[16];
      std::snprintf(n, sizeof(n), "S%d", i);
      (void)db.Assert("HOT", "TOUCHES", n);
    }
    return Status::OK();
  });
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  SessionRegistry registry(&store);
  auto session = registry.Create(8);
  ASSERT_NE(session, nullptr);

  // Build interesting session state: a trail with the cursor mid-way
  // and a non-empty overlay.
  ASSERT_TRUE(session->Execute("visit TOM").ok());
  ASSERT_TRUE(session->Execute("visit MATH101").ok());
  ASSERT_TRUE(session->Execute("back").ok());
  ASSERT_TRUE(
      session->Execute("hypo retract (TOM, ENROLLED-IN, MATH101)").ok());
  ASSERT_TRUE(session->Execute("hypo assert (TOM, LOVE, CS100)").ok());

  auto render = [&session]() {
    std::string out;
    auto hypo = session->Execute("hypo list");
    EXPECT_TRUE(hypo.ok());
    if (hypo.ok()) out += *hypo;
    auto info = session->Execute("session");
    EXPECT_TRUE(info.ok());
    if (info.ok()) {
      // Keep only the state lines; requests/steps counters advance by
      // construction on every Execute.
      std::istringstream in(*info);
      std::string line;
      while (std::getline(in, line)) {
        if (line.rfind("trail:", 0) == 0 || line.rfind("overlay:", 0) == 0 ||
            line.rfind("epoch:", 0) == 0) {
          out += line + "\n";
        }
      }
    }
    // The overlay's semantics, not just its bookkeeping: the
    // hypothetical world must answer exactly as before.
    auto probe = session->Execute("query (TOM, LOVE, ?Z)");
    EXPECT_TRUE(probe.ok());
    if (probe.ok()) out += *probe;
    return out;
  };
  const std::string before = render();

  const char* governed[] = {
      kPoison,
      "probe (?A, FEEDS, ?B) and (?B, FEEDS, ?C) and (?C, FEEDS, ?D)",
      "nav TOM",
      "visit SUE",
      "back",
      "forward",
      "near TOM",
      "dist TOM SUE",
      "assoc TOM SUE",
      "check",
      "dot",
  };
  // Boundary cancellation: a request arriving past its deadline is
  // refused before any work and leaves no trace.
  QueryBudget expired(QueryBudget::Clock::now() -
                      std::chrono::milliseconds(1));
  for (const char* verb : governed) {
    session->set_request_budget(&expired);
    auto result = session->Execute(verb);
    session->set_request_budget(nullptr);
    ASSERT_FALSE(result.ok()) << verb << " ran to completion";
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << verb << ": " << result.status().ToString();
    EXPECT_EQ(render(), before) << verb << " left a trace";
  }

  // Mid-evaluation cancellation: a live budget with a one-step cap
  // passes the boundary check, starts the work, and trips at the first
  // ticker stride — the unwind must roll back any half-taken state
  // (e.g. a visit must not move the trail cursor).
  const char* midway[] = {
      kPoison,
      "probe (?A, FEEDS, ?B) and (?B, FEEDS, ?C) and (?C, FEEDS, ?D)",
      "nav HOT",
      "visit HOT",
  };
  for (const char* verb : midway) {
    QueryBudget capped(QueryBudget::Clock::now() + std::chrono::hours(1),
                       /*max_steps=*/1);
    session->set_request_budget(&capped);
    auto result = session->Execute(verb);
    session->set_request_budget(nullptr);
    ASSERT_FALSE(result.ok()) << verb << " ran to completion";
    EXPECT_TRUE(result.status().IsResourceExhausted())
        << verb << ": " << result.status().ToString();
    EXPECT_EQ(render(), before) << verb << " left a trace";
  }
}

// Cancellation composing with group commit: once a mutation is past the
// pre-enqueue budget check, a firing deadline must NOT abort it — the
// worker waits for the ack and the client gets OK, never a half-applied
// commit or a lost ack. The WAL failpoint stretches the commit well
// past the deadline to force the race.
TEST_F(GovernanceTest, CancelAfterEnqueueWaitsForAck) {
#if !LSD_FAILPOINTS_ENABLED
  GTEST_SKIP() << "built without failpoints";
#else
  char tmpl[] = "/tmp/lsd_governance.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string prefix = std::string(tmpl) + "/db";
  ASSERT_TRUE(store_.OpenDurable(prefix).ok());
  SeedCampus(&store_);
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(50);
  StartServer(options);

  ASSERT_TRUE(failpoint::Configure("wal.batch.record=delay(150)").ok());
  TextClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Greeting().ok());
  auto start = Clock::now();
  auto reply = client.Send("assert (RACE1, TOUCHES, HUB)");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  failpoint::ClearAll();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  // The commit outlived the deadline (the WAL append alone took 3x the
  // request_timeout) yet the write acked: cancel-after-enqueue waits.
  EXPECT_GE(elapsed.count(), 100) << "failpoint did not stretch the commit";
  EXPECT_TRUE(reply->ok) << reply->error;
  auto ask = client.Send("query (RACE1, TOUCHES, HUB)");
  ASSERT_TRUE(ask.ok());
  ASSERT_TRUE(ask->ok) << ask->error;
  EXPECT_NE(ask->payload.find("true"), std::string::npos) << ask->payload;
#endif
}

// Torture: disconnect-cancellation racing the group-commit WAL write.
// Clients fire a multi-op batch mutation and slam the connection shut
// at a random point; whatever the timing, the store must never show a
// partially applied batch (its ops land in ONE commit slot) and the
// server must keep serving.
TEST_F(GovernanceTest, DisconnectRaceNeverHalfAppliesBatch) {
#if !LSD_FAILPOINTS_ENABLED
  GTEST_SKIP() << "built without failpoints";
#else
  char tmpl[] = "/tmp/lsd_governance.XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string prefix = std::string(tmpl) + "/db";
  ASSERT_TRUE(store_.OpenDurable(prefix).ok());
  SeedCampus(&store_);
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(200);
  StartServer(options);
  ASSERT_TRUE(failpoint::Configure("wal.batch.record=delay(2)").ok());

  constexpr int kBatches = 24;
  constexpr int kOpsPerBatch = 4;
  for (int b = 0; b < kBatches; ++b) {
    BinaryClient client(server_->port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Greeting().ok());
    std::vector<MutationOp> ops;
    for (int o = 0; o < kOpsPerBatch; ++o) {
      MutationOp op;
      op.source = "B" + std::to_string(b) + "-" + std::to_string(o);
      op.relationship = "TOUCHES";
      op.target = "HUB";
      ops.push_back(op);
    }
    ASSERT_TRUE(WriteAll(client.fd(),
                         EncodeFrame(FrameType::kMutation, 1,
                                     EncodeMutationPayload(ops)))
                    .ok());
    // Vary the race window: sometimes the close lands before the worker
    // even dequeues the request, sometimes mid-WAL-append.
    if (b % 3 != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(b % 7));
    }
    client.Close();
  }
  failpoint::ClearAll();

  // Let in-flight commits drain, then check atomicity batch by batch
  // through a fresh connection (a ground query renders true/false; an
  // unknown entity means the batch never interned, i.e. absent).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  TextClient checker(server_->port());
  ASSERT_TRUE(checker.connected());
  ASSERT_TRUE(checker.Greeting().ok());
  for (int b = 0; b < kBatches; ++b) {
    int present = 0;
    for (int o = 0; o < kOpsPerBatch; ++o) {
      const std::string name =
          "B" + std::to_string(b) + "-" + std::to_string(o);
      auto ask = checker.Send("query (" + name + ", TOUCHES, HUB)");
      ASSERT_TRUE(ask.ok()) << ask.status().ToString();
      if (ask->ok && ask->payload.find("true") != std::string::npos) {
        ++present;
      }
    }
    EXPECT_TRUE(present == 0 || present == kOpsPerBatch)
        << "batch " << b << " half-applied: " << present << "/"
        << kOpsPerBatch;
  }
  // The server survived the slam-fest and still serves.
  auto pong = checker.Send("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok);
#endif
}

// The starvation regression from the issue: 4 poison queries against a
// governed server while 64 cheap probes flow. Every poison must die at
// the deadline (+grace) and the cheap probes' p50 must stay within 2x
// of the no-poison baseline measured the same way.
TEST_F(GovernanceTest, PoisonQueriesDoNotStarveCheapProbes) {
  SeedCampus(&store_);
  SeedPoisonGraph(&store_);
  ServerOptions options;
  options.request_timeout = std::chrono::milliseconds(150);
  options.worker_threads = 8;  // poison must not consume the whole pool
  StartServer(options);

  constexpr int kProbes = 64;
  constexpr auto kPace = std::chrono::milliseconds(15);
  const std::string cheap = "query (TOM, ENROLLED-IN, ?C)";

  // One paced pass of cheap probes; returns per-request latency in us.
  auto run_probes = [&]() {
    std::vector<double> us;
    TextClient client(server_->port());
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.Greeting().ok());
    for (int i = 0; i < kProbes; ++i) {
      auto start = Clock::now();
      auto reply = client.Send(cheap);
      auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - start);
      EXPECT_TRUE(reply.ok() && reply->ok);
      us.push_back(static_cast<double>(elapsed.count()));
      std::this_thread::sleep_for(kPace);
    }
    std::nth_element(us.begin(), us.begin() + kProbes / 2, us.end());
    return us[kProbes / 2];
  };

  // Warm pass (closure, plan cache), then the measured baseline.
  (void)run_probes();
  const double baseline_p50_us = run_probes();

  // Fire 4 poison queries concurrently, then immediately run the same
  // paced probe pass against the loaded server.
  std::vector<std::thread> attackers;
  std::vector<std::chrono::milliseconds> poison_ms(4);
  std::vector<bool> poison_killed(4, false);
  for (int p = 0; p < 4; ++p) {
    attackers.emplace_back([this, p, &poison_ms, &poison_killed] {
      TextClient attacker(server_->port());
      if (!attacker.connected() || !attacker.Greeting().ok()) return;
      auto start = Clock::now();
      auto reply = attacker.Send(kPoison);
      poison_ms[p] = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - start);
      poison_killed[p] =
          reply.ok() && !reply->ok &&
          reply->error.find("DeadlineExceeded") != std::string::npos;
    });
  }
  const double hostile_p50_us = run_probes();
  for (auto& t : attackers) t.join();

  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(poison_killed[p]) << "poison " << p << " was not killed";
    EXPECT_LE(poison_ms[p].count(), 150 + 500)
        << "poison " << p << " outlived deadline + grace";
  }
  std::printf("starvation: baseline p50 %.1f us, hostile p50 %.1f us, "
              "poison kill times %ld/%ld/%ld/%ld ms\n",
              baseline_p50_us, hostile_p50_us,
              static_cast<long>(poison_ms[0].count()),
              static_cast<long>(poison_ms[1].count()),
              static_cast<long>(poison_ms[2].count()),
              static_cast<long>(poison_ms[3].count()));
  // 2x the baseline, with a 1 ms floor so microsecond-scale scheduler
  // jitter on small baselines cannot flake the assertion.
  EXPECT_LE(hostile_p50_us,
            std::max(2.0 * baseline_p50_us, baseline_p50_us + 1000.0))
      << "cheap probes starved: baseline p50 " << baseline_p50_us
      << "us, hostile p50 " << hostile_p50_us << "us";
}

// Satellite: io_timeout ships with a sane non-zero default so a silent
// peer cannot pin a connection forever.
TEST(GovernanceDefaultsTest, IoTimeoutDefaultsNonZero) {
  ServerOptions options;
  EXPECT_GT(options.io_timeout.count(), 0);
  EXPECT_GT(options.request_timeout.count(), 0);
}

}  // namespace
}  // namespace lsd
