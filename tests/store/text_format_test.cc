#include "store/text_format.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(TextFormatTest, ParsesFactsAndComments) {
  FactStore store;
  Status s = ParseText(
      "# a comment\n"
      "(JOHN, WORKS-FOR, SHIPPING)\n"
      "\n"
      "(SHIPPING, IN, DEPARTMENT)\n",
      &store, nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(store.size(), 2u);
  auto john = store.entities().Lookup("JOHN");
  ASSERT_TRUE(john.has_value());
}

TEST(TextFormatTest, ParsesRules) {
  FactStore store;
  std::vector<Rule> rules;
  Status s = ParseText(
      "rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, SALARY)\n"
      "integrity pos: (?X, IN, AGE-VALUE) => (?X, >, 0)\n",
      &store, &rules);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "pay");
  EXPECT_EQ(rules[0].kind, RuleKind::kInference);
  EXPECT_EQ(rules[0].body.size(), 1u);
  EXPECT_EQ(rules[0].head.size(), 1u);
  EXPECT_EQ(rules[1].kind, RuleKind::kIntegrity);
}

TEST(TextFormatTest, ParsesWhereConstraints) {
  FactStore store;
  std::vector<Rule> rules;
  Status s = ParseText(
      "rule gen: (?S, ?R, ?T), (?S2, ISA, ?S) => (?S2, ?R, ?T) "
      "where ?R individual\n",
      &store, &rules);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(rules.size(), 1u);
  bool found = false;
  for (size_t i = 0; i < rules[0].var_names.size(); ++i) {
    if (rules[0].var_names[i] == "R") {
      EXPECT_EQ(rules[0].var_constraints[i],
                VarConstraint::kIndividualRelationship);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TextFormatTest, ParsesClassMark) {
  FactStore store;
  Status s = ParseText("@class TOTAL-NUMBER\n", &store, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(store.IsClassRelationship(
      *store.entities().Lookup("TOTAL-NUMBER")));
}

TEST(TextFormatTest, ErrorsCarryLineNumbers) {
  FactStore store;
  Status s = ParseText("(A, B, C)\n(broken\n", &store, nullptr);
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(TextFormatTest, VariablesForbiddenInFacts) {
  FactStore store;
  Status s = ParseText("(?X, R, B)\n", &store, nullptr);
  EXPECT_TRUE(s.IsParseError());
}

TEST(TextFormatTest, RejectsUnsafeRule) {
  FactStore store;
  std::vector<Rule> rules;
  Status s = ParseText("rule bad: (?X, R, ?Y) => (?X, R, ?Z)\n", &store,
                       &rules);
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("unsafe"), std::string::npos);
}

TEST(TextFormatTest, RuleRoundTrip) {
  FactStore store;
  std::vector<Rule> rules;
  ASSERT_TRUE(ParseText(
                  "rule gen: (?S, ?R, ?T), (?S2, ISA, ?S) => (?S2, ?R, ?T) "
                  "where ?R individual\n",
                  &store, &rules)
                  .ok());
  std::string text = SerializeRule(rules[0], store.entities());
  FactStore store2;
  std::vector<Rule> rules2;
  Status s = ParseText(text + "\n", &store2, &rules2);
  ASSERT_TRUE(s.ok()) << s.ToString() << " text: " << text;
  ASSERT_EQ(rules2.size(), 1u);
  EXPECT_EQ(rules2[0].name, rules[0].name);
  EXPECT_EQ(rules2[0].body.size(), rules[0].body.size());
  EXPECT_EQ(rules2[0].var_constraints, rules[0].var_constraints);
}

TEST(TextFormatTest, FactsRoundTripThroughSerializeFacts) {
  FactStore store;
  store.Assert("JOHN", "LIKES", "FELIX");
  store.Assert("PC#9-WAM", "COMPOSED-BY", "MOZART");
  std::string text = SerializeFacts(store);
  FactStore store2;
  ASSERT_TRUE(ParseText(text, &store2, nullptr).ok());
  EXPECT_EQ(store2.size(), 2u);
  EXPECT_TRUE(store2.Contains(
      Fact(*store2.entities().Lookup("PC#9-WAM"),
           *store2.entities().Lookup("COMPOSED-BY"),
           *store2.entities().Lookup("MOZART"))));
}

TEST(TextFormatTest, UnicodeRelationAliases) {
  FactStore store;
  Status s = ParseText("(EMPLOYEE, ≺, PERSON)\n(JOHN, ∈, EMPLOYEE)\n",
                       &store, nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(store.Contains(Fact(*store.entities().Lookup("EMPLOYEE"),
                                  kEntIsa,
                                  *store.entities().Lookup("PERSON"))));
  EXPECT_TRUE(store.Contains(Fact(*store.entities().Lookup("JOHN"),
                                  kEntIn,
                                  *store.entities().Lookup("EMPLOYEE"))));
}

}  // namespace
}  // namespace lsd
