#include "store/triple_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"

namespace lsd {
namespace {

TEST(TripleIndexTest, InsertEraseContains) {
  TripleIndex idx;
  Fact f(1, 2, 3);
  EXPECT_TRUE(idx.Insert(f));
  EXPECT_FALSE(idx.Insert(f));  // duplicate
  EXPECT_TRUE(idx.Contains(f));
  EXPECT_EQ(idx.size(), 1u);
  EXPECT_TRUE(idx.Erase(f));
  EXPECT_FALSE(idx.Erase(f));
  EXPECT_FALSE(idx.Contains(f));
  EXPECT_TRUE(idx.empty());
}

TEST(TripleIndexTest, MatchByEachPattern) {
  TripleIndex idx;
  idx.Insert(Fact(1, 10, 100));
  idx.Insert(Fact(1, 10, 101));
  idx.Insert(Fact(1, 11, 100));
  idx.Insert(Fact(2, 10, 100));

  EXPECT_EQ(idx.Match(Pattern()).size(), 4u);
  EXPECT_EQ(idx.Match(Pattern(1, kAnyEntity, kAnyEntity)).size(), 3u);
  EXPECT_EQ(idx.Match(Pattern(kAnyEntity, 10, kAnyEntity)).size(), 3u);
  EXPECT_EQ(idx.Match(Pattern(kAnyEntity, kAnyEntity, 100)).size(), 3u);
  EXPECT_EQ(idx.Match(Pattern(1, 10, kAnyEntity)).size(), 2u);
  EXPECT_EQ(idx.Match(Pattern(1, kAnyEntity, 100)).size(), 2u);
  EXPECT_EQ(idx.Match(Pattern(kAnyEntity, 10, 100)).size(), 2u);
  EXPECT_EQ(idx.Match(Pattern(1, 10, 100)).size(), 1u);
  EXPECT_EQ(idx.Match(Pattern(9, kAnyEntity, kAnyEntity)).size(), 0u);
}

TEST(TripleIndexTest, EarlyStop) {
  TripleIndex idx;
  for (EntityId i = 0; i < 10; ++i) idx.Insert(Fact(1, 2, i));
  int seen = 0;
  bool completed = idx.ForEach(Pattern(1, 2, kAnyEntity), [&](const Fact&) {
    return ++seen < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 3);
}

TEST(TripleIndexTest, CountMatches) {
  TripleIndex idx;
  idx.Insert(Fact(1, 2, 3));
  idx.Insert(Fact(1, 2, 4));
  EXPECT_EQ(idx.CountMatches(Pattern()), 2u);
  EXPECT_EQ(idx.CountMatches(Pattern(1, 2, kAnyEntity)), 2u);
  EXPECT_EQ(idx.CountMatches(Pattern(1, 2, 3)), 1u);
  EXPECT_EQ(idx.CountMatches(Pattern(1, 2, 9)), 0u);
}

// Property sweep: every one of the 8 binding patterns must agree with a
// brute-force filter over a random fact set.
class TripleIndexPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleIndexPatternTest, AgreesWithBruteForce) {
  const int mask = GetParam();  // bit 0: source, 1: relationship, 2: target
  Rng rng(99);
  TripleIndex idx;
  std::vector<Fact> all;
  for (int i = 0; i < 500; ++i) {
    Fact f(static_cast<EntityId>(rng.Uniform(12)),
           static_cast<EntityId>(rng.Uniform(6)),
           static_cast<EntityId>(rng.Uniform(12)));
    if (idx.Insert(f)) all.push_back(f);
  }
  for (int trial = 0; trial < 50; ++trial) {
    Pattern p;
    if (mask & 1) p.source = static_cast<EntityId>(rng.Uniform(12));
    if (mask & 2) p.relationship = static_cast<EntityId>(rng.Uniform(6));
    if (mask & 4) p.target = static_cast<EntityId>(rng.Uniform(12));

    std::vector<Fact> expected;
    for (const Fact& f : all) {
      if (p.Matches(f)) expected.push_back(f);
    }
    std::vector<Fact> got = idx.Match(p);
    auto key = [](const Fact& f) {
      return std::tuple(f.source, f.relationship, f.target);
    };
    auto by_key = [&](const Fact& a, const Fact& b) {
      return key(a) < key(b);
    };
    std::sort(expected.begin(), expected.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, expected) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBindingPatterns, TripleIndexPatternTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace lsd
