#include "store/delta_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "store/triple_index.h"
#include "util/random.h"

namespace lsd {
namespace {

Fact RandomFact(Rng& rng) {
  return Fact(static_cast<EntityId>(rng.Uniform(12)),
              static_cast<EntityId>(rng.Uniform(5)),
              static_cast<EntityId>(rng.Uniform(12)));
}

TEST(DeltaIndexTest, InsertDeduplicatesAcrossTiers) {
  DeltaIndex idx(FrozenIndex({Fact(1, 2, 3)}));
  EXPECT_FALSE(idx.Insert(Fact(1, 2, 3)));  // already frozen
  EXPECT_TRUE(idx.Insert(Fact(4, 5, 6)));   // new, goes to overlay
  EXPECT_FALSE(idx.Insert(Fact(4, 5, 6)));  // already in overlay
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.frozen_size(), 1u);
  EXPECT_EQ(idx.overlay_size(), 1u);
  EXPECT_TRUE(idx.Contains(Fact(1, 2, 3)));
  EXPECT_TRUE(idx.Contains(Fact(4, 5, 6)));
  EXPECT_FALSE(idx.Contains(Fact(1, 2, 4)));
}

TEST(DeltaIndexTest, CompactPreservesContents) {
  Rng rng(3);
  DeltaIndex idx;
  TripleIndex reference;
  for (int i = 0; i < 300; ++i) {
    Fact f = RandomFact(rng);
    EXPECT_EQ(idx.Insert(f), reference.Insert(f));
    if (i == 150) idx.Compact();
  }
  idx.Compact();
  EXPECT_EQ(idx.overlay_size(), 0u);
  EXPECT_EQ(idx.size(), reference.size());
  reference.ForEach(Pattern(), [&](const Fact& f) {
    EXPECT_TRUE(idx.Contains(f));
    return true;
  });
}

TEST(DeltaIndexTest, InsertRunSmallGoesToOverlayLargeToSegment) {
  DeltaIndex idx;
  // Small run: below kL0MinRun, lands in the overlay.
  std::vector<Fact> small = {Fact(1, 1, 1), Fact(2, 2, 2)};
  EXPECT_EQ(idx.InsertRun(small), 2u);
  EXPECT_EQ(idx.overlay_size(), 2u);
  EXPECT_EQ(idx.segment_count(), 0u);

  // Large run: becomes an L0 frozen segment. The overlay is NOT folded
  // in — that is the background compactor's job, not the insert path's.
  std::vector<Fact> large;
  for (EntityId i = 0; i < DeltaIndex::kL0MinRun + 10; ++i) {
    large.push_back(Fact(i + 10, 0, 0));
  }
  std::sort(large.begin(), large.end(), OrderSrt());
  EXPECT_EQ(idx.InsertRun(large), large.size());
  EXPECT_EQ(idx.overlay_size(), 2u);
  EXPECT_EQ(idx.segment_count(), 1u);
  EXPECT_EQ(idx.size(), 2u + large.size());
  EXPECT_TRUE(idx.Contains(Fact(1, 1, 1)));
  EXPECT_TRUE(idx.Contains(large.front()));
  EXPECT_TRUE(idx.Contains(large.back()));

  // Re-inserting the same run adds nothing.
  EXPECT_EQ(idx.InsertRun(large), 0u);
  EXPECT_EQ(idx.size(), 2u + large.size());
}

TEST(DeltaIndexTest, InsertRunKeepsSegmentSizesGeometric) {
  // Equal-sized runs trip the tail-merge every time (the newest segment
  // is at least half the previous), so the list stays logarithmic in
  // the total size instead of growing one segment per run.
  DeltaIndex idx;
  const size_t n = DeltaIndex::kL0MinRun;
  for (int round = 0; round < 16; ++round) {
    std::vector<Fact> run;
    for (size_t i = 0; i < n; ++i) {
      run.push_back(Fact(static_cast<EntityId>(round * n + i), 1, 2));
    }
    EXPECT_EQ(idx.InsertRun(run), n);
  }
  EXPECT_EQ(idx.size(), 16 * n);
  EXPECT_LE(idx.segment_count(), 5u);  // ~log2(16) + slack, not 16
  // Oldest-to-newest the segments must shrink by at least 2x.
  const auto& segs = idx.segments();
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_GT(segs[i]->size(), 2 * segs[i + 1]->size() - 2);
  }
}

// ISSUE 10 satellite 1: inserting a modest run next to a large frozen
// generation must not rebuild the large generation (the old
// "overlay >= frozen/4 => fold everything" stall). The big segment must
// survive by pointer identity and the insert only appends after it.
TEST(DeltaIndexTest, InsertRunNeverRebuildsLargeOldGenerations) {
  std::vector<Fact> big;
  for (EntityId i = 0; i < 20'000; ++i) big.push_back(Fact(i, 1, 2));
  DeltaIndex idx(FrozenIndex(std::move(big)));
  ASSERT_EQ(idx.segment_count(), 1u);
  const FrozenIndex* big_segment = idx.segments()[0].get();

  // A run a quarter the frozen size — exactly the shape that used to
  // trigger the monolithic rebuild.
  std::vector<Fact> run;
  for (EntityId i = 0; i < 5'000; ++i) run.push_back(Fact(i, 3, 4));
  EXPECT_EQ(idx.InsertRun(run), run.size());

  ASSERT_GE(idx.segment_count(), 2u);
  EXPECT_EQ(idx.segments()[0].get(), big_segment)
      << "the old generation was rebuilt on the insert path";
  EXPECT_EQ(idx.size(), 25'000u);
}

TEST(DeltaIndexTest, CloneSharesSegmentsAndForksOverlay) {
  DeltaIndex idx;
  std::vector<Fact> run;
  for (EntityId i = 0; i < DeltaIndex::kL0MinRun; ++i) {
    run.push_back(Fact(i, 1, 2));
  }
  idx.InsertRun(run);
  idx.Insert(Fact(9000, 1, 2));
  DeltaIndex copy = idx.Clone();
  ASSERT_EQ(copy.segment_count(), idx.segment_count());
  EXPECT_EQ(copy.segments()[0].get(), idx.segments()[0].get());  // shared
  // Overlays are independent.
  EXPECT_TRUE(copy.Insert(Fact(9001, 1, 2)));
  EXPECT_FALSE(idx.Contains(Fact(9001, 1, 2)));
  EXPECT_TRUE(copy.Contains(Fact(9000, 1, 2)));
  EXPECT_EQ(idx.size() + 1, copy.size());
}

TEST(DeltaIndexTest, SwapMergedPrefixInstallsAndDetectsStaleness) {
  DeltaIndex idx;
  // 4x the later run so the post-pin InsertRun below stays its own
  // segment instead of tail-merging into (and so invalidating) the
  // pinned one.
  std::vector<Fact> run;
  for (EntityId i = 0; i < 4 * DeltaIndex::kL0MinRun; ++i) {
    run.push_back(Fact(i, 1, 2));
  }
  idx.InsertRun(run);
  idx.Insert(Fact(9000, 1, 2));  // overlay fact, pinned
  // Pin the tiers (what the compactor does off-thread)...
  auto pinned = idx.segments();
  auto merged = std::make_shared<const FrozenIndex>(idx.BuildMerged());
  // ...then mutate past the pin: these must survive the swap.
  idx.Insert(Fact(9001, 1, 2));
  std::vector<Fact> late;
  for (EntityId i = 0; i < DeltaIndex::kL0MinRun; ++i) {
    late.push_back(Fact(20'000 + i, 1, 2));
  }
  std::sort(late.begin(), late.end(), OrderSrt());
  idx.InsertRun(late);

  const size_t before = idx.size();
  ASSERT_TRUE(idx.SwapMergedPrefix(pinned, merged));
  EXPECT_EQ(idx.size(), before);  // nothing lost, nothing duplicated
  EXPECT_TRUE(idx.Contains(Fact(0, 1, 2)));
  EXPECT_TRUE(idx.Contains(Fact(9000, 1, 2)));  // folded into `merged`
  EXPECT_TRUE(idx.Contains(Fact(9001, 1, 2)));  // post-pin overlay fact
  EXPECT_TRUE(idx.Contains(late.front()));      // post-pin segment
  EXPECT_EQ(idx.segments()[0].get(), merged.get());
  // The pinned overlay fact moved into the merged generation.
  EXPECT_EQ(idx.overlay_size(), 1u);

  // A second swap against the consumed prefix is stale: the index must
  // refuse and stay untouched.
  const size_t segments_now = idx.segment_count();
  EXPECT_FALSE(idx.SwapMergedPrefix(pinned, merged));
  EXPECT_EQ(idx.segment_count(), segments_now);
  EXPECT_EQ(idx.size(), before);
}

TEST(DeltaIndexTest, ForEachStopsEarlyAcrossTiers) {
  DeltaIndex idx(FrozenIndex({Fact(1, 2, 3), Fact(4, 5, 6)}));
  idx.Insert(Fact(7, 8, 9));
  int seen = 0;
  bool complete = idx.ForEach(Pattern(), [&](const Fact&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(seen, 2);
}

// The two-tier index must answer all 8 binding patterns exactly like a
// plain TripleIndex holding the same facts, with the facts split across
// tiers at an arbitrary point — and CountMatches must equal the match
// count (it feeds the kEstimatedCost join order).
class DeltaIndexPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaIndexPatternTest, AgreesWithTripleIndex) {
  const int mask = GetParam();
  Rng rng(19);
  TripleIndex reference;
  std::vector<Fact> all;
  for (int i = 0; i < 400; ++i) {
    Fact f = RandomFact(rng);
    if (reference.Insert(f)) all.push_back(f);
  }
  // First half frozen, second half overlaid, a fact duplicated in both
  // insert streams to exercise dedup.
  const size_t half = all.size() / 2;
  DeltaIndex idx(FrozenIndex(
      std::vector<Fact>(all.begin(), all.begin() + half)));
  for (size_t i = half; i < all.size(); ++i) idx.Insert(all[i]);
  idx.Insert(all.front());
  ASSERT_EQ(idx.size(), reference.size());

  auto by_key = [](const Fact& a, const Fact& b) {
    return OrderSrt()(a, b);
  };
  for (int trial = 0; trial < 40; ++trial) {
    Pattern p;
    if (mask & 1) p.source = static_cast<EntityId>(rng.Uniform(12));
    if (mask & 2) p.relationship = static_cast<EntityId>(rng.Uniform(5));
    if (mask & 4) p.target = static_cast<EntityId>(rng.Uniform(12));
    std::vector<Fact> want = reference.Match(p);
    std::vector<Fact> got = idx.Match(p);
    std::sort(want.begin(), want.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, want) << "mask=" << mask;
    EXPECT_EQ(idx.CountMatches(p), want.size()) << "mask=" << mask;
    EXPECT_EQ(idx.EstimateMatches(p), want.size()) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, DeltaIndexPatternTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace lsd
