#include "store/delta_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "store/triple_index.h"
#include "util/random.h"

namespace lsd {
namespace {

Fact RandomFact(Rng& rng) {
  return Fact(static_cast<EntityId>(rng.Uniform(12)),
              static_cast<EntityId>(rng.Uniform(5)),
              static_cast<EntityId>(rng.Uniform(12)));
}

TEST(DeltaIndexTest, InsertDeduplicatesAcrossTiers) {
  DeltaIndex idx(FrozenIndex({Fact(1, 2, 3)}));
  EXPECT_FALSE(idx.Insert(Fact(1, 2, 3)));  // already frozen
  EXPECT_TRUE(idx.Insert(Fact(4, 5, 6)));   // new, goes to overlay
  EXPECT_FALSE(idx.Insert(Fact(4, 5, 6)));  // already in overlay
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.frozen_size(), 1u);
  EXPECT_EQ(idx.overlay_size(), 1u);
  EXPECT_TRUE(idx.Contains(Fact(1, 2, 3)));
  EXPECT_TRUE(idx.Contains(Fact(4, 5, 6)));
  EXPECT_FALSE(idx.Contains(Fact(1, 2, 4)));
}

TEST(DeltaIndexTest, CompactPreservesContents) {
  Rng rng(3);
  DeltaIndex idx;
  TripleIndex reference;
  for (int i = 0; i < 300; ++i) {
    Fact f = RandomFact(rng);
    EXPECT_EQ(idx.Insert(f), reference.Insert(f));
    if (i == 150) idx.Compact();
  }
  idx.Compact();
  EXPECT_EQ(idx.overlay_size(), 0u);
  EXPECT_EQ(idx.size(), reference.size());
  reference.ForEach(Pattern(), [&](const Fact& f) {
    EXPECT_TRUE(idx.Contains(f));
    return true;
  });
}

TEST(DeltaIndexTest, InsertRunSmallGoesToOverlayLargeToFrozen) {
  DeltaIndex idx;
  // Small run: below kCompactMinOverlay, lands in the overlay.
  std::vector<Fact> small = {Fact(1, 1, 1), Fact(2, 2, 2)};
  EXPECT_EQ(idx.InsertRun(small), 2u);
  EXPECT_EQ(idx.overlay_size(), 2u);

  // Large run: bulk-merges into the frozen tier and folds the overlay.
  std::vector<Fact> large;
  for (EntityId i = 0; i < DeltaIndex::kCompactMinOverlay + 10; ++i) {
    large.push_back(Fact(i + 10, 0, 0));
  }
  std::sort(large.begin(), large.end(), OrderSrt());
  EXPECT_EQ(idx.InsertRun(large), large.size());
  EXPECT_EQ(idx.overlay_size(), 0u);
  EXPECT_EQ(idx.size(), 2u + large.size());
  EXPECT_TRUE(idx.Contains(Fact(1, 1, 1)));
  EXPECT_TRUE(idx.Contains(large.front()));
  EXPECT_TRUE(idx.Contains(large.back()));

  // Re-inserting the same run adds nothing.
  EXPECT_EQ(idx.InsertRun(large), 0u);
  EXPECT_EQ(idx.size(), 2u + large.size());
}

TEST(DeltaIndexTest, MaybeCompactUsesGeometricPolicy) {
  DeltaIndex idx;
  // Tiny overlay: stays put.
  idx.Insert(Fact(1, 1, 1));
  EXPECT_FALSE(idx.MaybeCompact());
  EXPECT_EQ(idx.overlay_size(), 1u);
  // Past the minimum with an empty frozen tier: compacts.
  for (EntityId i = 0; i < DeltaIndex::kCompactMinOverlay; ++i) {
    idx.Insert(Fact(i, 2, 3));
  }
  EXPECT_TRUE(idx.MaybeCompact());
  EXPECT_EQ(idx.overlay_size(), 0u);
  EXPECT_GT(idx.frozen_size(), DeltaIndex::kCompactMinOverlay);
}

TEST(DeltaIndexTest, ForEachStopsEarlyAcrossTiers) {
  DeltaIndex idx(FrozenIndex({Fact(1, 2, 3), Fact(4, 5, 6)}));
  idx.Insert(Fact(7, 8, 9));
  int seen = 0;
  bool complete = idx.ForEach(Pattern(), [&](const Fact&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(seen, 2);
}

// The two-tier index must answer all 8 binding patterns exactly like a
// plain TripleIndex holding the same facts, with the facts split across
// tiers at an arbitrary point — and CountMatches must equal the match
// count (it feeds the kEstimatedCost join order).
class DeltaIndexPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(DeltaIndexPatternTest, AgreesWithTripleIndex) {
  const int mask = GetParam();
  Rng rng(19);
  TripleIndex reference;
  std::vector<Fact> all;
  for (int i = 0; i < 400; ++i) {
    Fact f = RandomFact(rng);
    if (reference.Insert(f)) all.push_back(f);
  }
  // First half frozen, second half overlaid, a fact duplicated in both
  // insert streams to exercise dedup.
  const size_t half = all.size() / 2;
  DeltaIndex idx(FrozenIndex(
      std::vector<Fact>(all.begin(), all.begin() + half)));
  for (size_t i = half; i < all.size(); ++i) idx.Insert(all[i]);
  idx.Insert(all.front());
  ASSERT_EQ(idx.size(), reference.size());

  auto by_key = [](const Fact& a, const Fact& b) {
    return OrderSrt()(a, b);
  };
  for (int trial = 0; trial < 40; ++trial) {
    Pattern p;
    if (mask & 1) p.source = static_cast<EntityId>(rng.Uniform(12));
    if (mask & 2) p.relationship = static_cast<EntityId>(rng.Uniform(5));
    if (mask & 4) p.target = static_cast<EntityId>(rng.Uniform(12));
    std::vector<Fact> want = reference.Match(p);
    std::vector<Fact> got = idx.Match(p);
    std::sort(want.begin(), want.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, want) << "mask=" << mask;
    EXPECT_EQ(idx.CountMatches(p), want.size()) << "mask=" << mask;
    EXPECT_EQ(idx.EstimateMatches(p), want.size()) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, DeltaIndexPatternTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace lsd
