#include "store/fact_store.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(FactStoreTest, AssertByNamesInterns) {
  FactStore store;
  Fact f = store.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  EXPECT_TRUE(store.Contains(f));
  EXPECT_EQ(store.entities().Name(f.source), "JOHN");
  EXPECT_EQ(store.entities().Name(f.relationship), "WORKS-FOR");
  EXPECT_EQ(store.entities().Name(f.target), "SHIPPING");
  EXPECT_EQ(store.size(), 1u);
}

TEST(FactStoreTest, VersionBumpsOnMutation) {
  FactStore store;
  uint64_t v0 = store.version();
  Fact f = store.Assert("A", "R", "B");
  EXPECT_GT(store.version(), v0);
  uint64_t v1 = store.version();
  store.Assert(f);  // duplicate: no change
  EXPECT_EQ(store.version(), v1);
  store.Retract(f);
  EXPECT_GT(store.version(), v1);
}

TEST(FactStoreTest, RelationshipClasses) {
  FactStore store;
  EntityId earns = store.entities().Intern("EARNS");
  EXPECT_FALSE(store.IsClassRelationship(earns));  // default individual
  store.MarkClassRelationship(earns);
  EXPECT_TRUE(store.IsClassRelationship(earns));
  // Built-in classifications (Sec 2.2-2.3).
  EXPECT_TRUE(store.IsClassRelationship(kEntIn));
  EXPECT_TRUE(store.IsClassRelationship(kEntSyn));
  EXPECT_TRUE(store.IsClassRelationship(kEntInv));
  EXPECT_TRUE(store.IsClassRelationship(kEntContra));
  EXPECT_FALSE(store.IsClassRelationship(kEntIsa));
}

TEST(FactStoreTest, BaseSourceStreamsAssertedFacts) {
  FactStore store;
  store.Assert("A", "R", "B");
  store.Assert("A", "R", "C");
  EXPECT_EQ(store.base_source().Match(Pattern()).size(), 2u);
  EXPECT_EQ(store.base_source().EstimateMatches(Pattern()), 2u);
  EXPECT_TRUE(store.base_source().Enumerable(Pattern()));
}

TEST(UnionSourceTest, DeduplicatesOverlappingLayers) {
  TripleIndex a, b;
  a.Insert(Fact(1, 2, 3));
  a.Insert(Fact(1, 2, 4));
  b.Insert(Fact(1, 2, 3));  // overlaps a
  b.Insert(Fact(1, 2, 5));
  IndexSource sa(&a), sb(&b);
  UnionSource u({&sa, &sb});
  EXPECT_EQ(u.Match(Pattern()).size(), 3u);
  EXPECT_TRUE(u.Contains(Fact(1, 2, 5)));
  EXPECT_FALSE(u.Contains(Fact(9, 9, 9)));
}

TEST(UnionSourceTest, EarlyStopPropagates) {
  TripleIndex a;
  for (EntityId i = 0; i < 10; ++i) a.Insert(Fact(1, 2, i));
  IndexSource sa(&a);
  UnionSource u({&sa});
  int seen = 0;
  bool completed = u.ForEach(Pattern(), [&](const Fact&) {
    return ++seen < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace lsd
