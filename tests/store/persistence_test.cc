#include "store/persistence.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "store/text_format.h"

namespace lsd {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lsd_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, SnapshotRoundTrip) {
  FactStore store;
  std::vector<Rule> rules;
  store.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  store.Assert("SHIPPING", "IN", "DEPARTMENT");
  ASSERT_TRUE(ParseText("rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, "
                        "SALARY)\n",
                        &store, &rules)
                  .ok());
  rules[0].enabled = false;

  ASSERT_TRUE(SaveSnapshot(Path("db.snap"), store, rules).ok());

  FactStore loaded;
  std::vector<Rule> loaded_rules;
  Status s = LoadSnapshot(Path("db.snap"), &loaded, &loaded_rules);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(loaded.size(), store.size());
  EXPECT_EQ(loaded.entities().size(), store.entities().size());
  EXPECT_TRUE(loaded.Contains(Fact(*loaded.entities().Lookup("JOHN"),
                                   *loaded.entities().Lookup("WORKS-FOR"),
                                   *loaded.entities().Lookup("SHIPPING"))));
  ASSERT_EQ(loaded_rules.size(), 1u);
  EXPECT_EQ(loaded_rules[0].name, "pay");
  EXPECT_FALSE(loaded_rules[0].enabled);
}

TEST_F(PersistenceTest, SnapshotPreservesEntityIds) {
  FactStore store;
  store.Assert("A", "R", "B");
  EntityId a = *store.entities().Lookup("A");

  ASSERT_TRUE(SaveSnapshot(Path("ids.snap"), store, {}).ok());
  FactStore loaded;
  ASSERT_TRUE(LoadSnapshot(Path("ids.snap"), &loaded, nullptr).ok());
  EXPECT_EQ(*loaded.entities().Lookup("A"), a);
}

TEST_F(PersistenceTest, LoadSnapshotRequiresFreshStore) {
  FactStore store;
  store.Assert("A", "R", "B");
  ASSERT_TRUE(SaveSnapshot(Path("x.snap"), store, {}).ok());
  Status s = LoadSnapshot(Path("x.snap"), &store, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, LoadRejectsGarbage) {
  std::FILE* f = std::fopen(Path("junk.snap").c_str(), "wb");
  std::fputs("not a snapshot", f);
  std::fclose(f);
  FactStore store;
  Status s = LoadSnapshot(Path("junk.snap"), &store, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, WalReplayAppliesMutations) {
  {
    FactStore store;
    Fact f1 = store.Assert("A", "R", "B");
    Fact f2 = store.Assert("C", "R", "D");
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("db.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
    ASSERT_TRUE(wal.AppendRetract(store, f1).ok());
  }
  FactStore replayed;
  std::vector<Rule> rules;
  Status s = Wal::Replay(Path("db.wal"), &replayed, &rules);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(replayed.Contains(Fact(*replayed.entities().Lookup("C"),
                                     *replayed.entities().Lookup("R"),
                                     *replayed.entities().Lookup("D"))));
}

TEST_F(PersistenceTest, WalReplayHandlesRulesAndToggles) {
  FactStore store;
  std::vector<Rule> rules;
  ASSERT_TRUE(ParseText("rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, "
                        "SALARY)\n",
                        &store, &rules)
                  .ok());
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("rules.wal")).ok());
    ASSERT_TRUE(wal.AppendRule(rules[0], store.entities()).ok());
    ASSERT_TRUE(wal.AppendSetRuleEnabled("pay", false).ok());
  }
  FactStore replayed;
  std::vector<Rule> replayed_rules;
  ASSERT_TRUE(
      Wal::Replay(Path("rules.wal"), &replayed, &replayed_rules).ok());
  ASSERT_EQ(replayed_rules.size(), 1u);
  EXPECT_EQ(replayed_rules[0].name, "pay");
  EXPECT_FALSE(replayed_rules[0].enabled);
}

TEST_F(PersistenceTest, MissingWalIsEmpty) {
  FactStore store;
  EXPECT_TRUE(Wal::Replay(Path("nope.wal"), &store, nullptr).ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(PersistenceTest, WalSurvivesReopen) {
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  Fact f2 = store.Assert("C", "R", "D");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("re.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  }
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("re.wal")).ok());  // append mode
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
  }
  FactStore replayed;
  ASSERT_TRUE(Wal::Replay(Path("re.wal"), &replayed, nullptr).ok());
  EXPECT_EQ(replayed.size(), 2u);
}

TEST_F(PersistenceTest, WalToleratesTornFinalRecord) {
  // A crash mid-append leaves a half-written final record. Replay must
  // keep every complete record, drop the torn tail, and truncate the
  // log so the next append continues from a clean point. Exercise every
  // possible chop position by byte-chopping the log.
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  Fact f2 = store.Assert("C", "R", "D");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("full.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  }
  long first_record_end = std::filesystem::file_size(Path("full.wal"));
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("full.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
  }
  std::string bytes;
  {
    std::FILE* f = std::fopen(Path("full.wal").c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  ASSERT_GT(static_cast<long>(bytes.size()), first_record_end);

  for (size_t chop = static_cast<size_t>(first_record_end);
       chop < bytes.size(); ++chop) {
    std::string torn_path = Path("torn.wal");
    std::FILE* f = std::fopen(torn_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, chop, f), chop);
    std::fclose(f);

    FactStore replayed;
    Status s = Wal::Replay(torn_path, &replayed, nullptr);
    ASSERT_TRUE(s.ok()) << "chop at " << chop << ": " << s.ToString();
    EXPECT_EQ(replayed.size(), 1u) << "chop at " << chop;
    // The torn tail is gone from disk: truncated back to the last
    // complete record, so appending resumes from a clean boundary.
    EXPECT_EQ(static_cast<long>(std::filesystem::file_size(torn_path)),
              first_record_end)
        << "chop at " << chop;

    Wal wal;
    ASSERT_TRUE(wal.Open(torn_path).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
    wal.Close();
    FactStore recovered;
    ASSERT_TRUE(Wal::Replay(torn_path, &recovered, nullptr).ok());
    EXPECT_EQ(recovered.size(), 2u) << "chop at " << chop;
  }
}

TEST_F(PersistenceTest, WalFsyncModeRoundTrips) {
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("sync.wal"), WalSync::kFsync).ok());
    EXPECT_EQ(wal.sync_mode(), WalSync::kFsync);
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  }
  FactStore replayed;
  ASSERT_TRUE(Wal::Replay(Path("sync.wal"), &replayed, nullptr).ok());
  EXPECT_EQ(replayed.size(), 1u);
}

}  // namespace
}  // namespace lsd
