#include "store/persistence.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "store/text_format.h"
#include "util/failpoint.h"

namespace lsd {
namespace {

// Segment files are `<base>.NNNNNN`; every segment starts with a
// 24-byte header (magic, generation, sequence).
constexpr long kSegmentHeaderBytes = 24;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lsd_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    failpoint::ClearAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // The first (and usually only) segment of a WAL base path.
  static std::string Segment(const std::string& base, int seq = 1) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), ".%06d", seq);
    return base + suffix;
  }

  static size_t CountSegments(const std::string& base) {
    size_t n = 0;
    for (int seq = 1; seq < 100; ++seq) {
      if (std::filesystem::exists(Segment(base, seq))) ++n;
    }
    return n;
  }

  static std::string ReadAll(const std::string& path) {
    std::string bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return bytes;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    return bytes;
  }

  static void WriteAll(const std::string& path, const std::string& bytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, SnapshotRoundTrip) {
  FactStore store;
  std::vector<Rule> rules;
  store.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  store.Assert("SHIPPING", "IN", "DEPARTMENT");
  ASSERT_TRUE(ParseText("rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, "
                        "SALARY)\n",
                        &store, &rules)
                  .ok());
  rules[0].enabled = false;

  ASSERT_TRUE(SaveSnapshot(Path("db.snap"), store, rules, 7).ok());

  FactStore loaded;
  std::vector<Rule> loaded_rules;
  uint64_t generation = 0;
  Status s = LoadSnapshot(Path("db.snap"), &loaded, &loaded_rules,
                          &generation);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(generation, 7u);
  EXPECT_EQ(loaded.size(), store.size());
  EXPECT_EQ(loaded.entities().size(), store.entities().size());
  EXPECT_TRUE(loaded.Contains(Fact(*loaded.entities().Lookup("JOHN"),
                                   *loaded.entities().Lookup("WORKS-FOR"),
                                   *loaded.entities().Lookup("SHIPPING"))));
  ASSERT_EQ(loaded_rules.size(), 1u);
  EXPECT_EQ(loaded_rules[0].name, "pay");
  EXPECT_FALSE(loaded_rules[0].enabled);
}

TEST_F(PersistenceTest, SnapshotPreservesEntityIds) {
  FactStore store;
  store.Assert("A", "R", "B");
  EntityId a = *store.entities().Lookup("A");

  ASSERT_TRUE(SaveSnapshot(Path("ids.snap"), store, {}).ok());
  FactStore loaded;
  ASSERT_TRUE(LoadSnapshot(Path("ids.snap"), &loaded, nullptr).ok());
  EXPECT_EQ(*loaded.entities().Lookup("A"), a);
}

TEST_F(PersistenceTest, SnapshotAtomicLeavesNoTmp) {
  FactStore store;
  store.Assert("A", "R", "B");
  ASSERT_TRUE(SaveSnapshotAtomic(Path("a.snap"), store, {}, 3).ok());
  EXPECT_FALSE(std::filesystem::exists(Path("a.snap.tmp")));
  FactStore loaded;
  uint64_t generation = 0;
  ASSERT_TRUE(
      LoadSnapshot(Path("a.snap"), &loaded, nullptr, &generation).ok());
  EXPECT_EQ(generation, 3u);
  EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(PersistenceTest, LoadSnapshotRequiresFreshStore) {
  FactStore store;
  store.Assert("A", "R", "B");
  ASSERT_TRUE(SaveSnapshot(Path("x.snap"), store, {}).ok());
  Status s = LoadSnapshot(Path("x.snap"), &store, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, LoadRejectsGarbage) {
  std::FILE* f = std::fopen(Path("junk.snap").c_str(), "wb");
  std::fputs("not a snapshot", f);
  std::fclose(f);
  FactStore store;
  Status s = LoadSnapshot(Path("junk.snap"), &store, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST_F(PersistenceTest, SnapshotChecksumCatchesEveryByteFlip) {
  FactStore store;
  store.Assert("ALPHA", "REL", "BETA");
  store.Assert("GAMMA", "REL", "DELTA");
  ASSERT_TRUE(SaveSnapshot(Path("c.snap"), store, {}).ok());
  const std::string good = ReadAll(Path("c.snap"));
  for (size_t pos = 0; pos < good.size(); ++pos) {
    std::string bad = good;
    bad[pos] ^= 0x40;
    WriteAll(Path("flip.snap"), bad);
    FactStore loaded;
    Status s = LoadSnapshot(Path("flip.snap"), &loaded, nullptr);
    EXPECT_FALSE(s.ok()) << "flip at " << pos << " was accepted";
  }
}

TEST_F(PersistenceTest, WalReplayAppliesMutations) {
  {
    FactStore store;
    Fact f1 = store.Assert("A", "R", "B");
    Fact f2 = store.Assert("C", "R", "D");
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("db.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
    ASSERT_TRUE(wal.AppendRetract(store, f1).ok());
  }
  FactStore replayed;
  std::vector<Rule> rules;
  RecoveryStats stats;
  Status s = Wal::Replay(Path("db.wal"), &replayed, &rules, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(replayed.Contains(Fact(*replayed.entities().Lookup("C"),
                                     *replayed.entities().Lookup("R"),
                                     *replayed.entities().Lookup("D"))));
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(stats.segments_replayed, 1u);
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(stats.bytes_dropped, 0u);
}

TEST_F(PersistenceTest, WalReplayHandlesRulesAndToggles) {
  FactStore store;
  std::vector<Rule> rules;
  ASSERT_TRUE(ParseText("rule pay: (?X, IN, EMPLOYEE) => (?X, EARNS, "
                        "SALARY)\n",
                        &store, &rules)
                  .ok());
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("rules.wal")).ok());
    ASSERT_TRUE(wal.AppendRule(rules[0], store.entities()).ok());
    ASSERT_TRUE(wal.AppendSetRuleEnabled("pay", false).ok());
  }
  FactStore replayed;
  std::vector<Rule> replayed_rules;
  ASSERT_TRUE(
      Wal::Replay(Path("rules.wal"), &replayed, &replayed_rules).ok());
  ASSERT_EQ(replayed_rules.size(), 1u);
  EXPECT_EQ(replayed_rules[0].name, "pay");
  EXPECT_FALSE(replayed_rules[0].enabled);
}

TEST_F(PersistenceTest, MissingWalIsEmpty) {
  FactStore store;
  RecoveryStats stats;
  EXPECT_TRUE(Wal::Replay(Path("nope.wal"), &store, nullptr, &stats).ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(stats.segments_replayed, 0u);
  EXPECT_EQ(stats.records_replayed, 0u);
}

TEST_F(PersistenceTest, WalSurvivesReopen) {
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  Fact f2 = store.Assert("C", "R", "D");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("re.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  }
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("re.wal")).ok());  // append mode
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
  }
  FactStore replayed;
  ASSERT_TRUE(Wal::Replay(Path("re.wal"), &replayed, nullptr).ok());
  EXPECT_EQ(replayed.size(), 2u);
}

TEST_F(PersistenceTest, WalRotatesSegmentsAndReplaysAll) {
  FactStore store;
  std::vector<Fact> facts;
  for (int i = 0; i < 20; ++i) {
    facts.push_back(store.Assert("E" + std::to_string(i), "R", "T"));
  }
  WalOptions options;
  options.segment_bytes = 64;  // a couple of records per segment
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("rot.wal"), options).ok());
    for (const Fact& f : facts) {
      ASSERT_TRUE(wal.AppendAssert(store, f).ok());
    }
  }
  EXPECT_GE(CountSegments(Path("rot.wal")), 5u);
  FactStore replayed;
  RecoveryStats stats;
  ASSERT_TRUE(Wal::Replay(Path("rot.wal"), &replayed, nullptr, &stats).ok());
  EXPECT_EQ(replayed.size(), facts.size());
  EXPECT_EQ(stats.records_replayed, facts.size());
  EXPECT_GE(stats.segments_replayed, 5u);
}

TEST_F(PersistenceTest, BeginGenerationDropsOldSegments) {
  FactStore store;
  Fact old_fact = store.Assert("OLD", "R", "T");
  Fact new_fact = store.Assert("NEW", "R", "T");
  Wal wal;
  ASSERT_TRUE(wal.Open(Path("gen.wal")).ok());
  ASSERT_TRUE(wal.AppendAssert(store, old_fact).ok());
  ASSERT_TRUE(wal.BeginGeneration(1).ok());
  EXPECT_EQ(wal.generation(), 1u);
  EXPECT_EQ(wal.generation_bytes(), 0u);
  ASSERT_TRUE(wal.AppendAssert(store, new_fact).ok());
  wal.Close();

  // Only the post-checkpoint segment survives.
  EXPECT_FALSE(std::filesystem::exists(Segment(Path("gen.wal"), 1)));
  ASSERT_TRUE(std::filesystem::exists(Segment(Path("gen.wal"), 2)));
  FactStore replayed;
  ASSERT_TRUE(
      Wal::Replay(Path("gen.wal"), &replayed, nullptr, nullptr, 1).ok());
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(replayed.entities().Lookup("NEW").has_value());
  EXPECT_FALSE(replayed.entities().Lookup("OLD").has_value());
}

TEST_F(PersistenceTest, ReplaySkipsStaleGenerationSegments) {
  // Simulate a crash between snapshot publication and old-segment
  // cleanup: a stale generation-0 segment lingers next to the
  // generation-1 segment. Replay at min_generation 1 must skip it (its
  // records are already in the snapshot) and finish the cleanup.
  FactStore store;
  Fact old_fact = store.Assert("OLD", "R", "T");
  Fact new_fact = store.Assert("NEW", "R", "T");
  Wal wal;
  ASSERT_TRUE(wal.Open(Path("stale.wal")).ok());
  ASSERT_TRUE(wal.AppendAssert(store, old_fact).ok());
  const std::string stale_bytes = ReadAll(Segment(Path("stale.wal"), 1));
  ASSERT_TRUE(wal.BeginGeneration(1).ok());
  ASSERT_TRUE(wal.AppendAssert(store, new_fact).ok());
  wal.Close();
  WriteAll(Segment(Path("stale.wal"), 1), stale_bytes);  // resurrect

  FactStore replayed;
  RecoveryStats stats;
  ASSERT_TRUE(
      Wal::Replay(Path("stale.wal"), &replayed, nullptr, &stats, 1).ok());
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_FALSE(replayed.entities().Lookup("OLD").has_value());
  EXPECT_EQ(stats.segments_skipped, 1u);
  EXPECT_EQ(stats.records_replayed, 1u);
  // The stale segment was cleaned up for good.
  EXPECT_FALSE(std::filesystem::exists(Segment(Path("stale.wal"), 1)));
}

TEST_F(PersistenceTest, WalToleratesTornFinalRecord) {
  // A crash mid-append leaves a half-written final record. Replay must
  // keep every complete record, drop the torn tail, and truncate the
  // log so the next append continues from a clean point. Exercise every
  // possible chop position by byte-chopping the segment.
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  Fact f2 = store.Assert("C", "R", "D");
  const std::string segment = Segment(Path("full.wal"));
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("full.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  }
  long first_record_end = std::filesystem::file_size(segment);
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(Path("full.wal")).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
  }
  const std::string bytes = ReadAll(segment);
  ASSERT_GT(static_cast<long>(bytes.size()), first_record_end);

  const std::string torn_base = Path("torn.wal");
  const std::string torn_segment = Segment(torn_base);
  for (size_t chop = static_cast<size_t>(first_record_end);
       chop < bytes.size(); ++chop) {
    WriteAll(torn_segment, bytes.substr(0, chop));

    FactStore replayed;
    RecoveryStats stats;
    Status s = Wal::Replay(torn_base, &replayed, nullptr, &stats);
    ASSERT_TRUE(s.ok()) << "chop at " << chop << ": " << s.ToString();
    EXPECT_EQ(replayed.size(), 1u) << "chop at " << chop;
    EXPECT_EQ(stats.records_replayed, 1u) << "chop at " << chop;
    EXPECT_EQ(stats.tail_truncated,
              chop != static_cast<size_t>(first_record_end))
        << chop;
    // The torn tail is gone from disk: truncated back to the last
    // complete record, so appending resumes from a clean boundary.
    EXPECT_EQ(static_cast<long>(std::filesystem::file_size(torn_segment)),
              first_record_end)
        << "chop at " << chop;

    Wal wal;
    ASSERT_TRUE(wal.Open(torn_base).ok());
    ASSERT_TRUE(wal.AppendAssert(store, f2).ok());
    wal.Close();
    FactStore recovered;
    ASSERT_TRUE(Wal::Replay(torn_base, &recovered, nullptr).ok());
    EXPECT_EQ(recovered.size(), 2u) << "chop at " << chop;
  }
}

TEST_F(PersistenceTest, WalSalvagesValidPrefixOnMidFileCorruption) {
  // Flip one byte at every position of every record (not just the
  // tail). The checksum must catch each flip and recovery must salvage
  // exactly the records before the damaged one — never fewer, never a
  // corrupt record applied.
  FactStore store;
  std::vector<Fact> facts;
  std::vector<long> boundaries;  // segment size after each append
  const std::string base = Path("mid.wal");
  const std::string segment = Segment(base);
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(base).ok());
    for (int i = 0; i < 5; ++i) {
      facts.push_back(store.Assert("ENTITY-" + std::to_string(i),
                                   "RELATES-TO", "TARGET-" +
                                   std::to_string(i)));
      ASSERT_TRUE(wal.AppendAssert(store, facts.back()).ok());
      wal.Close();
      boundaries.push_back(std::filesystem::file_size(segment));
      ASSERT_TRUE(wal.Open(base).ok());
    }
  }
  const std::string good = ReadAll(segment);
  ASSERT_EQ(static_cast<long>(good.size()), boundaries.back());

  const std::string hurt_base = Path("hurt.wal");
  const std::string hurt_segment = Segment(hurt_base);
  for (size_t pos = kSegmentHeaderBytes; pos < good.size(); ++pos) {
    // Which record holds this byte? Everything before it must survive.
    size_t intact_records = 0;
    while (boundaries[intact_records] <= static_cast<long>(pos)) {
      ++intact_records;
    }
    std::string bad = good;
    bad[pos] ^= 0x01;  // the smallest possible corruption
    WriteAll(hurt_segment, bad);

    FactStore replayed;
    RecoveryStats stats;
    Status s = Wal::Replay(hurt_base, &replayed, nullptr, &stats);
    ASSERT_TRUE(s.ok()) << "flip at " << pos << ": " << s.ToString();
    EXPECT_EQ(stats.records_replayed, intact_records) << "flip at " << pos;
    EXPECT_EQ(replayed.size(), intact_records) << "flip at " << pos;
    EXPECT_TRUE(stats.tail_truncated) << "flip at " << pos;
    const long expected_salvage =
        intact_records == 0 ? kSegmentHeaderBytes
                            : boundaries[intact_records - 1];
    EXPECT_EQ(stats.bytes_dropped, good.size() - expected_salvage)
        << "flip at " << pos;
    // Damage is truncated away: the log is usable again.
    EXPECT_EQ(static_cast<long>(std::filesystem::file_size(hurt_segment)),
              expected_salvage)
        << "flip at " << pos;
  }
}

TEST_F(PersistenceTest, CorruptionInEarlySegmentDropsLaterSegments) {
  // Records after mid-log damage may depend on lost state; replay must
  // not leap over the gap into later segments.
  FactStore store;
  std::vector<Fact> facts;
  for (int i = 0; i < 12; ++i) {
    facts.push_back(store.Assert("E" + std::to_string(i), "R", "T"));
  }
  WalOptions options;
  options.segment_bytes = 64;
  const std::string base = Path("multi.wal");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(base, options).ok());
    for (const Fact& f : facts) {
      ASSERT_TRUE(wal.AppendAssert(store, f).ok());
    }
  }
  const size_t segments = CountSegments(base);
  ASSERT_GE(segments, 3u);
  // Corrupt the first record of segment 2.
  std::string bytes = ReadAll(Segment(base, 2));
  ASSERT_GT(static_cast<long>(bytes.size()), kSegmentHeaderBytes);
  bytes[kSegmentHeaderBytes + 4] ^= 0xff;
  WriteAll(Segment(base, 2), bytes);

  FactStore replayed;
  RecoveryStats stats;
  ASSERT_TRUE(Wal::Replay(base, &replayed, nullptr, &stats).ok());
  // Everything in segment 1 survives; nothing at or past the damage.
  EXPECT_GT(stats.records_replayed, 0u);
  EXPECT_LT(stats.records_replayed, facts.size());
  EXPECT_EQ(replayed.size(), stats.records_replayed);
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.segments_dropped, segments - 2);
  for (size_t seq = 3; seq <= segments; ++seq) {
    EXPECT_FALSE(std::filesystem::exists(Segment(base, seq))) << seq;
  }
}

TEST_F(PersistenceTest, WalFsyncModeRoundTrips) {
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  {
    Wal wal;
    WalOptions options;
    options.sync = WalSync::kFsync;
    ASSERT_TRUE(wal.Open(Path("sync.wal"), options).ok());
    EXPECT_EQ(wal.sync_mode(), WalSync::kFsync);
    ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  }
  FactStore replayed;
  ASSERT_TRUE(Wal::Replay(Path("sync.wal"), &replayed, nullptr).ok());
  EXPECT_EQ(replayed.size(), 1u);
}

#if LSD_FAILPOINTS_ENABLED

TEST_F(PersistenceTest, InjectedShortWritePoisonsThenSalvages) {
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  Fact f2 = store.Assert("C", "R", "D");
  Wal wal;
  ASSERT_TRUE(wal.Open(Path("short.wal")).ok());
  ASSERT_TRUE(wal.AppendAssert(store, f1).ok());
  {
    failpoint::Policy policy;
    policy.action = failpoint::Action::kShortWrite;
    policy.arg = 5;  // tear the record 5 bytes in
    failpoint::Scoped fp("wal.append.write", policy);
    Status s = wal.AppendAssert(store, f2);
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }
  // The log refuses to interleave good records after the torn one.
  Status refused = wal.AppendAssert(store, f2);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  wal.Close();

  // Recovery salvages the intact prefix and the log is writable again.
  FactStore replayed;
  RecoveryStats stats;
  ASSERT_TRUE(
      Wal::Replay(Path("short.wal"), &replayed, nullptr, &stats).ok());
  EXPECT_EQ(stats.records_replayed, 1u);
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.bytes_dropped, 5u);
  ASSERT_TRUE(wal.Open(Path("short.wal")).ok());
  EXPECT_TRUE(wal.AppendAssert(store, f2).ok());
}

TEST_F(PersistenceTest, InjectedAppendErrorPoisonsWal) {
  FactStore store;
  Fact f1 = store.Assert("A", "R", "B");
  Wal wal;
  ASSERT_TRUE(wal.Open(Path("err.wal")).ok());
  {
    failpoint::Policy policy;
    policy.action = failpoint::Action::kError;
    failpoint::Scoped fp("wal.append.write", policy);
    EXPECT_EQ(wal.AppendAssert(store, f1).code(), StatusCode::kIoError);
  }
  EXPECT_EQ(wal.AppendAssert(store, f1).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, InjectedSnapshotErrorPropagates) {
  FactStore store;
  store.Assert("A", "R", "B");
  failpoint::Policy policy;
  policy.action = failpoint::Action::kError;
  failpoint::Scoped fp("snapshot.write", policy);
  EXPECT_EQ(SaveSnapshot(Path("f.snap"), store, {}).code(),
            StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(Path("f.snap")));
}

#endif  // LSD_FAILPOINTS_ENABLED

}  // namespace
}  // namespace lsd
