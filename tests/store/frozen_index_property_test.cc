// Property test: the columnar CSR FrozenIndex is observationally
// equivalent to the dynamic TripleIndex. For many random fact sets it
// checks all 8 binding patterns (Match and exact CountMatches), the
// Contains probe, the SortedFreeValues contract on every two-bound
// shape, and that Merged(base, run) equals a from-scratch build of the
// union. This is the safety net under the storage rewrite: any drift in
// the offset tables or the permutation merge shows up here first.
#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "store/frozen_index.h"
#include "store/triple_index.h"
#include "util/random.h"

namespace lsd {
namespace {

struct Shape {
  uint64_t seed;
  size_t facts;
  EntityId sources;
  EntityId rels;
  EntityId targets;
};

std::vector<Fact> RandomFacts(Rng& rng, const Shape& s) {
  std::vector<Fact> facts;
  facts.reserve(s.facts);
  for (size_t i = 0; i < s.facts; ++i) {
    facts.emplace_back(static_cast<EntityId>(rng.Uniform(s.sources)),
                       static_cast<EntityId>(rng.Uniform(s.rels)),
                       static_cast<EntityId>(rng.Uniform(s.targets)));
  }
  return facts;
}

std::vector<Fact> Sorted(std::vector<Fact> facts) {
  std::sort(facts.begin(), facts.end(), [](const Fact& a, const Fact& b) {
    return std::tuple(a.source, a.relationship, a.target) <
           std::tuple(b.source, b.relationship, b.target);
  });
  return facts;
}

Pattern MakePattern(int mask, Rng& rng, const Shape& s) {
  Pattern p;
  if (mask & 1) p.source = static_cast<EntityId>(rng.Uniform(s.sources));
  if (mask & 2) p.relationship = static_cast<EntityId>(rng.Uniform(s.rels));
  if (mask & 4) p.target = static_cast<EntityId>(rng.Uniform(s.targets));
  return p;
}

class FrozenIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrozenIndexPropertyTest, EquivalentToTripleIndex) {
  Rng rng(GetParam());
  const Shape shape{GetParam(),
                    50 + rng.Uniform(400),
                    static_cast<EntityId>(2 + rng.Uniform(20)),
                    static_cast<EntityId>(1 + rng.Uniform(8)),
                    static_cast<EntityId>(2 + rng.Uniform(20))};

  TripleIndex dynamic;
  for (const Fact& f : RandomFacts(rng, shape)) dynamic.Insert(f);
  const FrozenIndex frozen = FrozenIndex::FromTripleIndex(dynamic);
  ASSERT_EQ(frozen.size(), dynamic.size());

  // Contains agrees on present and absent facts.
  for (const Fact& f : frozen.Materialize()) {
    EXPECT_TRUE(dynamic.Contains(f));
    EXPECT_TRUE(frozen.Contains(f));
  }
  for (int i = 0; i < 50; ++i) {
    Fact probe(static_cast<EntityId>(rng.Uniform(shape.sources + 3)),
               static_cast<EntityId>(rng.Uniform(shape.rels + 3)),
               static_cast<EntityId>(rng.Uniform(shape.targets + 3)));
    EXPECT_EQ(frozen.Contains(probe), dynamic.Contains(probe));
  }

  for (int mask = 0; mask < 8; ++mask) {
    for (int trial = 0; trial < 10; ++trial) {
      const Pattern p = MakePattern(mask, rng, shape);
      const std::vector<Fact> want = Sorted(dynamic.Match(p));
      const std::vector<Fact> got = Sorted(frozen.Match(p));
      ASSERT_EQ(got, want) << "mask=" << mask;
      EXPECT_EQ(frozen.CountMatches(p), want.size()) << "mask=" << mask;

      if (p.BoundCount() != 2) continue;
      // SortedFreeValues: strictly ascending distinct values of the one
      // free position, agreeing between the two index kinds.
      std::vector<EntityId> frozen_scratch, dynamic_scratch;
      SortedIdSpan frozen_span, dynamic_span;
      ASSERT_TRUE(frozen.SortedFreeValues(p, &frozen_scratch, &frozen_span));
      ASSERT_TRUE(
          dynamic.SortedFreeValues(p, &dynamic_scratch, &dynamic_span));
      std::set<EntityId> expect;
      const int free_pos = !p.SourceBound() ? 0 : (!p.RelationshipBound() ? 1 : 2);
      for (const Fact& f : want) {
        expect.insert(free_pos == 0   ? f.source
                      : free_pos == 1 ? f.relationship
                                      : f.target);
      }
      ASSERT_EQ(frozen_span.size, expect.size()) << "mask=" << mask;
      ASSERT_EQ(dynamic_span.size, expect.size()) << "mask=" << mask;
      size_t i = 0;
      for (EntityId e : expect) {
        EXPECT_EQ(frozen_span.data[i], e);
        EXPECT_EQ(dynamic_span.data[i], e);
        ++i;
      }
    }
  }
}

TEST_P(FrozenIndexPropertyTest, MergedEqualsFromScratchBuild) {
  Rng rng(GetParam() * 2654435761u + 17);
  const Shape shape{GetParam(),
                    30 + rng.Uniform(300),
                    static_cast<EntityId>(2 + rng.Uniform(15)),
                    static_cast<EntityId>(1 + rng.Uniform(6)),
                    static_cast<EntityId>(2 + rng.Uniform(15))};

  // Split a duplicate-free universe into a base set and a disjoint run.
  std::vector<Fact> all = Sorted(RandomFacts(rng, shape));
  all.erase(std::unique(all.begin(), all.end(),
                        [](const Fact& a, const Fact& b) {
                          return a.source == b.source &&
                                 a.relationship == b.relationship &&
                                 a.target == b.target;
                        }),
            all.end());
  std::vector<Fact> base_facts, run;
  for (const Fact& f : all) {
    (rng.Uniform(3) == 0 ? run : base_facts).push_back(f);
  }

  const FrozenIndex base(base_facts);
  const FrozenIndex merged = FrozenIndex::Merged(base, run);
  const FrozenIndex scratch(all);

  ASSERT_EQ(merged.size(), scratch.size());
  EXPECT_EQ(merged.Materialize(), scratch.Materialize());
  EXPECT_EQ(merged.DistinctSources(), scratch.DistinctSources());
  EXPECT_EQ(merged.DistinctRelationships(), scratch.DistinctRelationships());
  EXPECT_EQ(merged.DistinctTargets(), scratch.DistinctTargets());

  for (int mask = 0; mask < 8; ++mask) {
    for (int trial = 0; trial < 6; ++trial) {
      const Pattern p = MakePattern(mask, rng, shape);
      EXPECT_EQ(Sorted(merged.Match(p)), Sorted(scratch.Match(p)))
          << "mask=" << mask;
      EXPECT_EQ(merged.CountMatches(p), scratch.CountMatches(p));
    }
  }

  // AppendMissing against the merged index filters exactly the union.
  std::vector<Fact> missing;
  merged.AppendMissing(all, &missing);
  EXPECT_TRUE(missing.empty());
  std::vector<Fact> fresh;
  base.AppendMissing(all, &fresh);
  EXPECT_EQ(fresh, Sorted(run));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrozenIndexPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));

// The columnar layout must beat the old three-sorted-arrays layout
// (3 Fact copies = 36 bytes/fact) by at least 2x at the E9 storage
// benchmark's shape: 100k facts over 10k entities.
TEST(FrozenIndexMemoryTest, HalvesTripleArrayFootprintAtE9Scale) {
  Rng rng(42);
  std::vector<Fact> facts;
  facts.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    facts.emplace_back(static_cast<EntityId>(rng.Uniform(10'000)),
                       static_cast<EntityId>(rng.Uniform(8)),
                       static_cast<EntityId>(rng.Uniform(10'000)));
  }
  const FrozenIndex frozen(facts);
  const FrozenIndex::Memory mem = frozen.MemoryUsage();
  EXPECT_GT(mem.run_bytes, 0u);
  EXPECT_GT(mem.perm_bytes, 0u);
  EXPECT_GT(mem.offset_bytes, 0u);
  const size_t old_layout = 3 * sizeof(Fact) * frozen.size();
  EXPECT_LE(2 * mem.total(), old_layout)
      << "columnar tier uses " << mem.total() << " bytes vs " << old_layout
      << " for three sorted Fact arrays";
}

}  // namespace
}  // namespace lsd
