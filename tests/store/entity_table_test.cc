#include "store/entity_table.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(EntityTableTest, BuiltinsOccupyFixedIds) {
  EntityTable t;
  EXPECT_EQ(t.size(), static_cast<size_t>(kNumBuiltinEntities));
  EXPECT_EQ(*t.Lookup("ANY"), kEntTop);
  EXPECT_EQ(*t.Lookup("NONE"), kEntBottom);
  EXPECT_EQ(*t.Lookup("ISA"), kEntIsa);
  EXPECT_EQ(*t.Lookup("IN"), kEntIn);
  EXPECT_EQ(*t.Lookup("SYN"), kEntSyn);
  EXPECT_EQ(*t.Lookup("INV"), kEntInv);
  EXPECT_EQ(*t.Lookup("CONTRA"), kEntContra);
  EXPECT_EQ(*t.Lookup("<"), kEntLess);
  EXPECT_EQ(*t.Lookup(">"), kEntGreater);
  EXPECT_EQ(*t.Lookup("="), kEntEq);
  EXPECT_EQ(*t.Lookup("/="), kEntNeq);
  EXPECT_EQ(t.Kind(kEntTop), EntityKind::kBuiltin);
}

TEST(EntityTableTest, InternIsIdempotent) {
  EntityTable t;
  EntityId a = t.Intern("JOHN");
  EntityId b = t.Intern("JOHN");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.Name(a), "JOHN");
  EXPECT_EQ(t.Kind(a), EntityKind::kRegular);
}

TEST(EntityTableTest, NamesAreCaseNormalized) {
  EntityTable t;
  EXPECT_EQ(t.Intern("john"), t.Intern("JOHN"));
  EXPECT_EQ(t.Intern("Works-For"), t.Intern("WORKS-FOR"));
  EXPECT_EQ(*t.Lookup("  john  "), t.Intern("JOHN"));
}

TEST(EntityTableTest, UnicodeAliasesResolveToBuiltins) {
  EntityTable t;
  EXPECT_EQ(t.Intern("≺"), kEntIsa);
  EXPECT_EQ(t.Intern("∈"), kEntIn);
  EXPECT_EQ(t.Intern("≈"), kEntSyn);
  EXPECT_EQ(t.Intern("↔"), kEntInv);
  EXPECT_EQ(t.Intern("⊥"), kEntContra);
  EXPECT_EQ(t.Intern("≠"), kEntNeq);
  EXPECT_EQ(t.Intern("≤"), kEntLessEq);
  EXPECT_EQ(t.Intern("≥"), kEntGreaterEq);
  EXPECT_EQ(t.Intern("Δ"), kEntTop);
  EXPECT_EQ(t.Intern("∇"), kEntBottom);
}

TEST(EntityTableTest, NumericEntities) {
  EntityTable t;
  EntityId n = t.Intern("25000");
  EXPECT_TRUE(t.IsNumeric(n));
  EXPECT_DOUBLE_EQ(*t.NumericValue(n), 25000.0);
  EntityId dollars = t.Intern("$25000");
  EXPECT_NE(n, dollars);  // distinct entities...
  EXPECT_DOUBLE_EQ(*t.NumericValue(dollars), 25000.0);  // ...same value
  EXPECT_FALSE(t.NumericValue(t.Intern("JOHN")).has_value());
}

TEST(EntityTableTest, LookupOfUnknownReturnsNullopt) {
  EntityTable t;
  EXPECT_FALSE(t.Lookup("NOBODY").has_value());
  EXPECT_EQ(t.size(), static_cast<size_t>(kNumBuiltinEntities));
}

TEST(EntityTableTest, ComposedKind) {
  EntityTable t;
  EntityId c = t.InternComposed("A.B.C");
  EXPECT_EQ(t.Kind(c), EntityKind::kComposed);
  // Re-interning the same name (even plainly) keeps one id.
  EXPECT_EQ(t.Intern("A.B.C"), c);
}

TEST(EntityTableTest, IdsAreDense) {
  EntityTable t;
  EntityId a = t.Intern("A");
  EntityId b = t.Intern("B");
  EXPECT_EQ(b, a + 1);
  EXPECT_TRUE(t.IsValid(a));
  EXPECT_TRUE(t.IsValid(b));
  EXPECT_FALSE(t.IsValid(b + 1));
}

}  // namespace
}  // namespace lsd
