#include "store/frozen_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "store/triple_index.h"
#include "util/random.h"

namespace lsd {
namespace {

TEST(FrozenIndexTest, DeduplicatesInput) {
  FrozenIndex idx({Fact(1, 2, 3), Fact(1, 2, 3), Fact(4, 5, 6)});
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.Contains(Fact(1, 2, 3)));
  EXPECT_TRUE(idx.Contains(Fact(4, 5, 6)));
  EXPECT_FALSE(idx.Contains(Fact(1, 2, 4)));
}

TEST(FrozenIndexTest, FromTripleIndex) {
  TripleIndex dynamic;
  dynamic.Insert(Fact(1, 2, 3));
  dynamic.Insert(Fact(7, 8, 9));
  FrozenIndex frozen = FrozenIndex::FromTripleIndex(dynamic);
  EXPECT_EQ(frozen.size(), 2u);
  EXPECT_TRUE(frozen.Contains(Fact(7, 8, 9)));
}

// The frozen index must answer all 8 patterns identically to the
// dynamic one.
class FrozenIndexPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(FrozenIndexPatternTest, AgreesWithDynamicIndex) {
  const int mask = GetParam();
  Rng rng(7);
  TripleIndex dynamic;
  for (int i = 0; i < 400; ++i) {
    dynamic.Insert(Fact(static_cast<EntityId>(rng.Uniform(10)),
                        static_cast<EntityId>(rng.Uniform(5)),
                        static_cast<EntityId>(rng.Uniform(10))));
  }
  FrozenIndex frozen = FrozenIndex::FromTripleIndex(dynamic);
  ASSERT_EQ(frozen.size(), dynamic.size());

  auto by_key = [](const Fact& a, const Fact& b) {
    return std::tuple(a.source, a.relationship, a.target) <
           std::tuple(b.source, b.relationship, b.target);
  };
  for (int trial = 0; trial < 40; ++trial) {
    Pattern p;
    if (mask & 1) p.source = static_cast<EntityId>(rng.Uniform(10));
    if (mask & 2) p.relationship = static_cast<EntityId>(rng.Uniform(5));
    if (mask & 4) p.target = static_cast<EntityId>(rng.Uniform(10));
    std::vector<Fact> want = dynamic.Match(p);
    std::vector<Fact> got = frozen.Match(p);
    std::sort(want.begin(), want.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, want) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBindingPatterns, FrozenIndexPatternTest,
                         ::testing::Range(0, 8));

// The two (?, r, ?) scan strategies (canonical-column filter vs RTS
// permutation gather) must produce the same fact set; only their
// emission order may differ.
TEST(FrozenIndexTest, RelScanModesAgree) {
  Rng rng(11);
  std::vector<Fact> facts;
  for (int i = 0; i < 600; ++i) {
    facts.push_back(Fact(static_cast<EntityId>(rng.Uniform(40)),
                         static_cast<EntityId>(rng.Uniform(6)),
                         static_cast<EntityId>(rng.Uniform(40))));
  }
  FrozenIndex direct(facts);
  FrozenIndex gather(facts);
  direct.set_rel_scan_mode(FrozenIndex::RelScanMode::kDirect);
  gather.set_rel_scan_mode(FrozenIndex::RelScanMode::kGather);
  auto by_key = [](const Fact& a, const Fact& b) {
    return std::tuple(a.source, a.relationship, a.target) <
           std::tuple(b.source, b.relationship, b.target);
  };
  for (EntityId r = 0; r < 6; ++r) {
    Pattern p(kAnyEntity, r, kAnyEntity);
    std::vector<Fact> from_direct = direct.Match(p);
    std::vector<Fact> from_gather = gather.Match(p);
    EXPECT_EQ(from_direct.size(), direct.CountMatches(p));
    std::sort(from_direct.begin(), from_direct.end(), by_key);
    std::sort(from_gather.begin(), from_gather.end(), by_key);
    EXPECT_EQ(from_direct, from_gather) << "relationship " << r;
  }
}

TEST(FrozenIndexTest, RelScanDirectPathStopsEarly) {
  std::vector<Fact> facts;
  for (EntityId i = 0; i < 10; ++i) facts.push_back(Fact(i, 2, i));
  FrozenIndex idx(std::move(facts));
  idx.set_rel_scan_mode(FrozenIndex::RelScanMode::kDirect);
  int seen = 0;
  bool completed =
      idx.ForEach(Pattern(kAnyEntity, 2, kAnyEntity), [&](const Fact&) {
        return ++seen < 3;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 3);
}

TEST(FrozenIndexTest, EarlyStop) {
  std::vector<Fact> facts;
  for (EntityId i = 0; i < 10; ++i) facts.push_back(Fact(1, 2, i));
  FrozenIndex idx(std::move(facts));
  int seen = 0;
  bool completed =
      idx.ForEach(Pattern(1, kAnyEntity, kAnyEntity), [&](const Fact&) {
        return ++seen < 4;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 4);
}

}  // namespace
}  // namespace lsd
