#include "store/frozen_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "store/triple_index.h"
#include "util/random.h"

namespace lsd {
namespace {

TEST(FrozenIndexTest, DeduplicatesInput) {
  FrozenIndex idx({Fact(1, 2, 3), Fact(1, 2, 3), Fact(4, 5, 6)});
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.Contains(Fact(1, 2, 3)));
  EXPECT_TRUE(idx.Contains(Fact(4, 5, 6)));
  EXPECT_FALSE(idx.Contains(Fact(1, 2, 4)));
}

TEST(FrozenIndexTest, FromTripleIndex) {
  TripleIndex dynamic;
  dynamic.Insert(Fact(1, 2, 3));
  dynamic.Insert(Fact(7, 8, 9));
  FrozenIndex frozen = FrozenIndex::FromTripleIndex(dynamic);
  EXPECT_EQ(frozen.size(), 2u);
  EXPECT_TRUE(frozen.Contains(Fact(7, 8, 9)));
}

// The frozen index must answer all 8 patterns identically to the
// dynamic one.
class FrozenIndexPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(FrozenIndexPatternTest, AgreesWithDynamicIndex) {
  const int mask = GetParam();
  Rng rng(7);
  TripleIndex dynamic;
  for (int i = 0; i < 400; ++i) {
    dynamic.Insert(Fact(static_cast<EntityId>(rng.Uniform(10)),
                        static_cast<EntityId>(rng.Uniform(5)),
                        static_cast<EntityId>(rng.Uniform(10))));
  }
  FrozenIndex frozen = FrozenIndex::FromTripleIndex(dynamic);
  ASSERT_EQ(frozen.size(), dynamic.size());

  auto by_key = [](const Fact& a, const Fact& b) {
    return std::tuple(a.source, a.relationship, a.target) <
           std::tuple(b.source, b.relationship, b.target);
  };
  for (int trial = 0; trial < 40; ++trial) {
    Pattern p;
    if (mask & 1) p.source = static_cast<EntityId>(rng.Uniform(10));
    if (mask & 2) p.relationship = static_cast<EntityId>(rng.Uniform(5));
    if (mask & 4) p.target = static_cast<EntityId>(rng.Uniform(10));
    std::vector<Fact> want = dynamic.Match(p);
    std::vector<Fact> got = frozen.Match(p);
    std::sort(want.begin(), want.end(), by_key);
    std::sort(got.begin(), got.end(), by_key);
    EXPECT_EQ(got, want) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBindingPatterns, FrozenIndexPatternTest,
                         ::testing::Range(0, 8));

TEST(FrozenIndexTest, EarlyStop) {
  std::vector<Fact> facts;
  for (EntityId i = 0; i < 10; ++i) facts.push_back(Fact(1, 2, i));
  FrozenIndex idx(std::move(facts));
  int seen = 0;
  bool completed =
      idx.ForEach(Pattern(1, kAnyEntity, kAnyEntity), [&](const Fact&) {
        return ++seen < 4;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 4);
}

}  // namespace
}  // namespace lsd
