#include "util/failpoint.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace lsd {
namespace failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearAll(); }
};

#if LSD_FAILPOINTS_ENABLED

// A helper site exercised through the real macros, exactly as
// production code uses them.
Status GuardedWrite() {
  LSD_FAILPOINT_RETURN_IF_SET(test.write);
  return Status::OK();
}

TEST_F(FailpointTest, UnarmedSiteDoesNothing) {
  EXPECT_FALSE(Armed());
  EXPECT_TRUE(GuardedWrite().ok());
  // Unarmed evaluations take the fast path: not even a hit is counted.
  EXPECT_EQ(Hits("test.write"), 0u);
}

TEST_F(FailpointTest, ErrorPolicyInjectsIoError) {
  Policy policy;
  policy.action = Action::kError;
  Set("test.write", policy);
  EXPECT_TRUE(Armed());
  Status s = GuardedWrite();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.ToString().find("test.write"), std::string::npos);
  EXPECT_EQ(Hits("test.write"), 1u);
  EXPECT_EQ(Fires("test.write"), 1u);

  Clear("test.write");
  EXPECT_FALSE(Armed());
  EXPECT_TRUE(GuardedWrite().ok());
}

TEST_F(FailpointTest, SkipDelaysFiring) {
  Policy policy;
  policy.action = Action::kError;
  policy.skip = 2;
  Set("test.write", policy);
  EXPECT_TRUE(GuardedWrite().ok());
  EXPECT_TRUE(GuardedWrite().ok());
  EXPECT_FALSE(GuardedWrite().ok());
  EXPECT_FALSE(GuardedWrite().ok());
  EXPECT_EQ(Hits("test.write"), 4u);
  EXPECT_EQ(Fires("test.write"), 2u);
}

TEST_F(FailpointTest, MaxFiresLimitsFiring) {
  Policy policy;
  policy.action = Action::kError;
  policy.max_fires = 2;
  Set("test.write", policy);
  EXPECT_FALSE(GuardedWrite().ok());
  EXPECT_FALSE(GuardedWrite().ok());
  EXPECT_TRUE(GuardedWrite().ok());  // budget exhausted
  EXPECT_EQ(Fires("test.write"), 2u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    SetSeed(seed);
    Policy policy;
    policy.action = Action::kError;
    policy.probability = 0.3;
    Set("test.write", policy);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!GuardedWrite().ok());
    Clear("test.write");
    return fired;
  };
  auto a = run(42);
  auto b = run(42);
  auto c = run(43);
  EXPECT_EQ(a, b);  // same seed, same firing pattern
  EXPECT_NE(a, c);  // different seed, different pattern
  size_t fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FailpointTest, ShortWriteHitCarriesBudget) {
  Policy policy;
  policy.action = Action::kShortWrite;
  policy.arg = 7;
  Set("test.short", policy);
  LSD_FAILPOINT_HIT(test.short, hit);
  EXPECT_TRUE(hit.fired());
  EXPECT_EQ(hit.action, Action::kShortWrite);
  EXPECT_EQ(hit.arg, 7u);
}

TEST_F(FailpointTest, DelayIsServedInsideEvaluate) {
  Policy policy;
  policy.action = Action::kDelay;
  policy.arg = 1;  // 1ms: just prove the path runs
  Set("test.delay", policy);
  LSD_FAILPOINT_HIT(test.delay, hit);
  // The sleep already happened; the caller has nothing left to do.
  EXPECT_FALSE(hit.fired());
  EXPECT_EQ(Fires("test.delay"), 1u);
}

TEST_F(FailpointTest, ScopedClearsOnExit) {
  {
    Policy policy;
    policy.action = Action::kError;
    Scoped fp("test.write", policy);
    EXPECT_FALSE(GuardedWrite().ok());
  }
  EXPECT_TRUE(GuardedWrite().ok());
  EXPECT_FALSE(Armed());
}

TEST_F(FailpointTest, EvaluatedSitesBecomeKnown) {
  Policy policy;
  policy.action = Action::kError;
  Set("test.known", policy);
  (void)GuardedWrite();  // registers test.write lazily while armed
  auto sites = KnownSites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.known"),
            sites.end());
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.write"),
            sites.end());
}

TEST_F(FailpointTest, ConfigureParsesFullGrammar) {
  ASSERT_TRUE(Configure("seed=7; test.write=error@2*3%0.5 ;"
                        "test.short=short(16),test.delay=delay(1)")
                  .ok());
  // Drain the skip budget; with probability 0.5 and seed 7 some of the
  // next evaluations fire, never exceeding max_fires=3.
  size_t fires = 0;
  for (int i = 0; i < 100; ++i) fires += GuardedWrite().ok() ? 0 : 1;
  EXPECT_GT(fires, 0u);
  EXPECT_LE(fires, 3u);
  LSD_FAILPOINT_HIT(test.short, hit);
  EXPECT_EQ(hit.action, Action::kShortWrite);
  EXPECT_EQ(hit.arg, 16u);
}

TEST_F(FailpointTest, ConfigureTurnsSitesOff) {
  ASSERT_TRUE(Configure("test.write=error").ok());
  EXPECT_FALSE(GuardedWrite().ok());
  ASSERT_TRUE(Configure("test.write=off").ok());
  EXPECT_TRUE(GuardedWrite().ok());
  EXPECT_FALSE(Armed());
}

TEST_F(FailpointTest, ConfigureRejectsBadSpecs) {
  EXPECT_FALSE(Configure("no-equals-sign").ok());
  EXPECT_FALSE(Configure("site=frobnicate").ok());
  EXPECT_FALSE(Configure("=error").ok());
}

// The durability kill sites the crash-torture harness targets. If a
// site is renamed or dropped, this fails loudly here instead of the
// torture run silently killing at nothing.
TEST_F(FailpointTest, CanonicalDurabilitySitesExist) {
  const char* kSites[] = {
      "wal.append.write", "wal.append.flush",   "wal.rotate",
      "wal.batch.record", "wal.batch.sync",     "snapshot.write",
      "snapshot.rename",  "wal.generation.swap", "checkpoint.swap",
      "store.commit.begin", "store.commit.publish",
  };
  // Grepping the sources is out of reach for a unit test; instead,
  // every site must at least be armable and clearable by name without
  // issue, and the persistence/torture suites prove they fire. Keep
  // this list in sync with crash_torture_test.cc.
  for (const char* site : kSites) {
    Policy policy;
    policy.action = Action::kError;
    Set(site, policy);
    EXPECT_EQ(Fires(site), 0u);
    Clear(site);
  }
  EXPECT_FALSE(Armed());
}

#else  // !LSD_FAILPOINTS_ENABLED

TEST_F(FailpointTest, MacrosCompileToNothingWhenDisabled) {
  Policy policy;
  policy.action = Action::kError;
  Set("test.write", policy);  // registry still works...
  LSD_FAILPOINT(test.write);  // ...but sites never evaluate
  LSD_FAILPOINT_HIT(test.write, hit);
  EXPECT_FALSE(hit.fired());
  EXPECT_EQ(Hits("test.write"), 0u);
}

#endif  // LSD_FAILPOINTS_ENABLED

}  // namespace
}  // namespace failpoint
}  // namespace lsd
