#include "util/string_util.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \n "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(AsciiToUpper("works-for"), "WORKS-FOR");
  EXPECT_EQ(AsciiToLower("PC#9-WAM"), "pc#9-wam");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("rule pay:", "rule "));
  EXPECT_FALSE(StartsWith("rul", "rule"));
  EXPECT_TRUE(EndsWith("db.snap", ".snap"));
  EXPECT_FALSE(EndsWith("snap", "db.snap"));
}

TEST(StringUtilTest, ParseNumericEntityAcceptsNumbers) {
  EXPECT_DOUBLE_EQ(*ParseNumericEntity("25000"), 25000.0);
  EXPECT_DOUBLE_EQ(*ParseNumericEntity("$25000"), 25000.0);
  EXPECT_DOUBLE_EQ(*ParseNumericEntity("2.6"), 2.6);
  EXPECT_DOUBLE_EQ(*ParseNumericEntity("-5"), -5.0);
}

TEST(StringUtilTest, ParseNumericEntityRejectsNonNumbers) {
  EXPECT_FALSE(ParseNumericEntity("JOHN").has_value());
  EXPECT_FALSE(ParseNumericEntity("25000X").has_value());
  EXPECT_FALSE(ParseNumericEntity("$").has_value());
  EXPECT_FALSE(ParseNumericEntity("").has_value());
  EXPECT_FALSE(ParseNumericEntity("inf").has_value());
  EXPECT_FALSE(ParseNumericEntity("nan").has_value());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, "."), "only");
}

}  // namespace
}  // namespace lsd
