#include "util/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(Crc32cTest, KnownAnswers) {
  // The standard CRC32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (RFC 3720 test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposesLikeOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly, until "
      "the buffer spans several 8-byte slices";
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleByteFlip) {
  std::string data = "loosely structured database record payload";
  const uint32_t good = Crc32c(data.data(), data.size());
  for (size_t pos = 0; pos < data.size(); ++pos) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      data[pos] ^= static_cast<char>(1u << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), good)
          << "flip bit " << int(bit) << " of byte " << pos;
      data[pos] ^= static_cast<char>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace lsd
