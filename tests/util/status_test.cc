#include "util/status.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::DataLoss("x"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kIntegrityViolation),
            "IntegrityViolation");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("bad");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  LSD_ASSIGN_OR_RETURN(int x, in);
  return x * 2;
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

Status FailsThrough(bool fail) {
  LSD_RETURN_IF_ERROR(fail ? Status::DataLoss("x") : Status::OK());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(FailsThrough(false).ok());
  EXPECT_EQ(FailsThrough(true).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace lsd
