#include "util/random.h"

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversBothEndpoints) {
  Rng rng(5);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    lo |= (v == 3);
    hi |= (v == 5);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(4);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 should dominate rank 50 heavily under exponent 1.2.
  EXPECT_GT(counts[0], counts[50] * 5);
  // Every sample in range (vector indexing above would have thrown).
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(3);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace lsd
