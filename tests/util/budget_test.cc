// QueryBudget / BudgetTicker unit tests: typed trips (deadline, step
// cap, explicit cancel), first-reason-wins stamping, the ticker's
// stride amortization, and cross-thread cap enforcement.
#include "util/budget.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace lsd {
namespace {

TEST(QueryBudgetTest, DefaultIsUngoverned) {
  QueryBudget budget;
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_FALSE(budget.cancelled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(budget.Charge(1'000'000).ok());
  }
}

TEST(QueryBudgetTest, DeadlineTripsWithTypedStatus) {
  QueryBudget budget(QueryBudget::Clock::now() -
                     std::chrono::milliseconds(1));
  Status st = budget.Check();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_TRUE(budget.cancelled());
  EXPECT_EQ(budget.cancel_reason(), CancelReason::kDeadline);
  // Once tripped, every subsequent charge reports the same reason.
  EXPECT_TRUE(budget.Charge(1).IsDeadlineExceeded());
}

TEST(QueryBudgetTest, StepCapTripsWithTypedStatus) {
  QueryBudget budget(QueryBudget::Clock::now() + std::chrono::hours(1),
                     /*max_steps=*/100);
  EXPECT_TRUE(budget.Charge(100).ok());
  Status st = budget.Charge(1);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(budget.cancel_reason(), CancelReason::kBudget);
}

TEST(QueryBudgetTest, ExplicitCancelWinsOverLaterTrips) {
  QueryBudget budget(std::chrono::hours(1));
  budget.Cancel(CancelReason::kDisconnect);
  Status st = budget.Check();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  // First reason wins: a later deadline self-cancel must not relabel.
  budget.Cancel(CancelReason::kDeadline);
  EXPECT_EQ(budget.cancel_reason(), CancelReason::kDisconnect);
}

TEST(QueryBudgetTest, ShedMapsToResourceExhausted) {
  Status st = QueryBudget::CancelStatus(CancelReason::kShed);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

TEST(QueryBudgetTest, CheckDoesNotConsumeSteps) {
  QueryBudget budget(QueryBudget::Clock::now() + std::chrono::hours(1),
                     /*max_steps=*/10);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(budget.Check().ok());
  }
  EXPECT_EQ(budget.steps(), 0u);
}

TEST(QueryBudgetTest, CapEnforcedAcrossThreads) {
  QueryBudget budget(QueryBudget::Clock::now() + std::chrono::hours(1),
                     /*max_steps=*/100'000);
  std::vector<std::thread> threads;
  std::atomic<int> tripped{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&budget, &tripped] {
      for (int i = 0; i < 1'000'000; ++i) {
        if (!budget.Charge(1).ok()) {
          tripped.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tripped.load(), 4);
  EXPECT_EQ(budget.cancel_reason(), CancelReason::kBudget);
}

TEST(BudgetTickerTest, NullBudgetIsFree) {
  BudgetTicker ticker(nullptr);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(ticker.Tick().ok());
  }
}

TEST(BudgetTickerTest, SettlesWholeStrideAgainstToken) {
  QueryBudget budget(QueryBudget::Clock::now() + std::chrono::hours(1));
  BudgetTicker ticker(&budget);
  for (uint32_t i = 0; i < BudgetTicker::kStride - 1; ++i) {
    ASSERT_TRUE(ticker.Tick().ok());
  }
  EXPECT_EQ(budget.steps(), 0u);  // not yet settled
  ASSERT_TRUE(ticker.Tick().ok());
  EXPECT_EQ(budget.steps(), BudgetTicker::kStride);
}

TEST(BudgetTickerTest, ReportsTripAtStrideBoundary) {
  QueryBudget budget(QueryBudget::Clock::now() + std::chrono::hours(1),
                     /*max_steps=*/1);
  BudgetTicker ticker(&budget);
  Status st = Status::OK();
  uint64_t ticks = 0;
  while (st.ok() && ticks < 10 * BudgetTicker::kStride) {
    ++ticks;
    st = ticker.Tick();
  }
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(ticks, static_cast<uint64_t>(BudgetTicker::kStride));
}

}  // namespace
}  // namespace lsd
