// The introduction's second motivation, end to end: two independently
// structured relational databases are imported into one loose store,
// their vocabulary differences reconciled with synonym facts, and the
// merged heap browsed as one database — no global schema was designed.
#include <cstdio>

#include "baseline/import.h"
#include "core/loose_db.h"
#include "query/table_formatter.h"

int main() {
  lsd::LooseDb db;
  lsd::EntityTable& e = db.entities();

  // Source 1: HR system — STAFF(NAME, DEPT, WAGE).
  lsd::baseline::Catalog hr;
  auto staff = hr.CreateRelation("STAFF", {"NAME", "DEPT", "WAGE"});
  if (!staff.ok()) return 1;
  (*staff)->Insert({e.Intern("JOHN"), e.Intern("SHIPPING"),
                    e.Intern("$26000")});
  (*staff)->Insert({e.Intern("MARY"), e.Intern("RECEIVING"),
                    e.Intern("$25000")});

  // Source 2: payroll system — PERSONNEL(NAME, UNIT, PAY), different
  // column vocabulary, overlapping people.
  lsd::baseline::Catalog payroll;
  auto personnel =
      payroll.CreateRelation("PERSONNEL", {"NAME", "UNIT", "PAY"});
  if (!personnel.ok()) return 1;
  (*personnel)->Insert({e.Intern("JOHNNY"), e.Intern("SHIPPING"),
                        e.Intern("$26000")});
  (*personnel)->Insert({e.Intern("TOM"), e.Intern("SHIPPING"),
                        e.Intern("$27000")});

  auto s1 = lsd::baseline::ImportCatalog(&hr,
                                         lsd::baseline::ImportShape::kKeyed,
                                         &db);
  auto s2 = lsd::baseline::ImportCatalog(
      &payroll, lsd::baseline::ImportShape::kKeyed, &db);
  if (!s1.ok() || !s2.ok()) return 1;
  std::printf("imported %zu + %zu facts from two sources\n",
              s1->facts_asserted, s2->facts_asserted);

  // Reconciliation is three facts, not a schema migration (Sec 3.3).
  db.Assert("WAGE", "SYN", "PAY");
  db.Assert("DEPT", "SYN", "UNIT");
  db.Assert("JOHN", "SYN", "JOHNNY");

  // One vocabulary now reaches both sources...
  std::printf("\n== everyone's PAY, whichever source recorded it ==\n");
  auto pay = db.Query("(?X, PAY, ?S) and (?X, IN, STAFF)");
  if (!pay.ok()) return 1;
  std::printf("%s", lsd::FormatResult(*pay, db.entities()).c_str());

  // ...and identity reconciliation merges John's two records.
  std::printf("\n== try(JOHN): both sources' facts, one entity ==\n");
  auto t = db.Try("JOHN");
  if (!t.ok()) return 1;
  std::printf("%s", t->c_str());

  // The structural question no single source could answer.
  std::printf("\n== who shares John's department? ==\n");
  auto peers = db.Query(
      "(JOHN, DEPT, ?D) and (?X, DEPT, ?D) and (?X, /=, JOHN) and "
      "(?X, /=, JOHNNY)");
  if (!peers.ok()) {
    std::fprintf(stderr, "%s\n", peers.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", lsd::FormatResult(*peers, db.entities()).c_str());
  return 0;
}
