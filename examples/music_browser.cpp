// Reproduces the navigation session of Sec 4.1 (tables F1-F3 in
// DESIGN.md): John's neighborhood, the concerto's neighborhood, and the
// associations between Leopold/John and Mozart, including the composed
// relationship FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY.
#include <cstdio>

#include "core/loose_db.h"
#include "workload/music_domain.h"

int main() {
  lsd::LooseDb db;
  lsd::workload::BuildMusicDomain(&db);

  std::printf("== (JOHN, *, *) ==\n");
  auto john = db.Navigate("JOHN");
  if (!john.ok()) {
    std::fprintf(stderr, "%s\n", john.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", john->Render(db.entities()).c_str());

  std::printf("== (PC#9-WAM, *, *) ==\n");
  auto concerto = db.Navigate("PC#9-WAM");
  if (!concerto.ok()) return 1;
  std::printf("%s\n", concerto->Render(db.entities()).c_str());

  std::printf("== (LEOPOLD, *, MOZART) ==\n");
  auto leopold = db.RenderAssociations("LEOPOLD", "MOZART");
  if (!leopold.ok()) return 1;
  std::printf("%s\n", leopold->c_str());

  std::printf("== (JOHN, *, MOZART) — composition as a browsing tool ==\n");
  auto paths = db.RenderAssociations("JOHN", "MOZART");
  if (!paths.ok()) return 1;
  std::printf("%s\n", paths->c_str());

  std::printf("== try(MOZART) — the navigation start-up aid ==\n");
  auto t = db.Try("MOZART");
  if (!t.ok()) return 1;
  std::printf("%s", t->c_str());
  return 0;
}
