// The Sec 6.1 operators on an organization database: the relation()
// structured view (table F5), include()/exclude() of inference rules,
// and integrity checking with the salary constraint of Sec 2.5.
#include <cstdio>

#include "core/loose_db.h"
#include "workload/org_domain.h"

int main() {
  lsd::LooseDb db;
  lsd::workload::OrgOptions options;
  options.num_employees = 6;
  options.num_departments = 2;
  options.violate_salaries = true;  // plant one violation to report
  lsd::workload::BuildOrgDomain(&db, options);

  std::printf(
      "== relation(EMPLOYEE, WORKS-FOR DEPARTMENT, EARNS SALARY) ==\n");
  auto table = db.Relation("EMPLOYEE", {{"WORKS-FOR", "DEPARTMENT"},
                                        {"EARNS", "SALARY"}});
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", table->Render(db.entities()).c_str());

  std::printf("== integrity check (salary-cap constraint) ==\n");
  auto violations = db.FindIntegrityViolations();
  if (!violations.ok()) return 1;
  for (const auto& v : *violations) {
    std::printf("  violation: %s\n", v.description.c_str());
  }
  if (violations->empty()) std::printf("  closure is contradiction-free\n");

  std::printf(
      "\n== exclude(mem-source)/exclude(mem-target): inference off ==\n");
  auto with = db.Query("(EMP-0, EARNS, SALARY)");
  std::printf("  with rules:    %s\n",
              with.ok() && with->truth ? "derivable" : "not derivable");
  // Both membership rules can derive it (via the class fact and via the
  // salary value's membership), so exclude both.
  if (!db.SetRuleEnabled("mem-source", false).ok()) return 1;
  if (!db.SetRuleEnabled("mem-target", false).ok()) return 1;
  auto without = db.Query("(EMP-0, EARNS, SALARY)");
  std::printf("  without rules: %s\n",
              without.ok() && without->truth ? "derivable"
                                             : "not derivable");
  return 0;
}
