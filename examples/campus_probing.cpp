// Reproduces the probing examples of Sec 5: the "free things all
// students love" retraction menu (F4) and the USC quarterbacks cascade,
// plus the misspelled-entity diagnosis.
#include <cstdio>

#include "core/loose_db.h"
#include "query/table_formatter.h"
#include "workload/university_domain.h"

namespace {

void RunProbe(lsd::LooseDb& db, const char* text) {
  std::printf("?- %s\n", text);
  auto probe = db.Probe(text);
  if (!probe.ok()) {
    std::fprintf(stderr, "probe error: %s\n",
                 probe.status().ToString().c_str());
    return;
  }
  if (probe->original_succeeded) {
    std::printf("%s",
                lsd::FormatResult(probe->original_result, db.entities())
                    .c_str());
    return;
  }
  std::printf("%s", probe->Menu(db.entities()).c_str());
  for (size_t i = 0; i < probe->successes.size(); ++i) {
    std::printf("-- selection %zu: %s\n", i + 1,
                probe->successes[i].query.DebugString(db.entities())
                    .c_str());
    std::printf("%s",
                lsd::FormatResult(probe->successes[i].result,
                                  db.entities())
                    .c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  lsd::LooseDb db;
  lsd::workload::BuildCampusDomain(&db);

  // Sec 5.2: the paper's menu — two successes.
  RunProbe(db, "(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");

  // Sec 5.1: which quarterbacks graduated from USC?
  RunProbe(db, "(?Z, IN, QUARTERBACK) and (?Z, GRADUATE-OF, USC)");

  // A query that simply succeeds needs no retraction.
  RunProbe(db, "(FRESHMAN, LOVE, ?Z)");

  // A misspelled relationship is diagnosed.
  RunProbe(db, "(BOB, ATENDED, ?X)");
  return 0;
}
