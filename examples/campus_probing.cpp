// Reproduces the probing examples of Sec 5: the "free things all
// students love" retraction menu (F4) and the USC quarterbacks cascade,
// plus the misspelled-entity diagnosis — then replays the same probe as
// two concurrent clients of the serving layer, each with their own
// hypothetical retractions over one shared store.
#include <cstdio>

#include "core/loose_db.h"
#include "query/table_formatter.h"
#include "server/session.h"
#include "server/shared_store.h"
#include "workload/university_domain.h"

namespace {

void RunProbe(lsd::LooseDb& db, const char* text) {
  std::printf("?- %s\n", text);
  auto probe = db.Probe(text);
  if (!probe.ok()) {
    std::fprintf(stderr, "probe error: %s\n",
                 probe.status().ToString().c_str());
    return;
  }
  if (probe->original_succeeded) {
    std::printf("%s",
                lsd::FormatResult(probe->original_result, db.entities())
                    .c_str());
    return;
  }
  std::printf("%s", probe->Menu(db.entities()).c_str());
  for (size_t i = 0; i < probe->successes.size(); ++i) {
    std::printf("-- selection %zu: %s\n", i + 1,
                probe->successes[i].query.DebugString(db.entities())
                    .c_str());
    std::printf("%s",
                lsd::FormatResult(probe->successes[i].result,
                                  db.entities())
                    .c_str());
  }
  std::printf("\n");
}

void RunSession(lsd::ServerSession& session, const char* who,
                const char* line) {
  std::printf("[%s] > %s\n", who, line);
  auto result = session.Execute(line);
  if (result.ok()) {
    std::printf("%s", result->c_str());
  } else {
    std::printf("error: %s\n", result.status().ToString().c_str());
  }
}

// Two browsers share one store. Alice hypothesizes away the fact behind
// the FRESHMAN menu entry — her probe loses that success, Bob's keeps
// it, and her own menu comes back once she drops the hypothesis.
void TwoClientProbing() {
  std::printf("== two clients, one shared store ==\n");
  lsd::SharedStore store;
  auto seeded = store.Commit([](lsd::LooseDb& db) {
    lsd::workload::BuildCampusDomain(&db);
    return lsd::Status::OK();
  });
  if (!seeded.ok()) {
    std::fprintf(stderr, "seed error: %s\n",
                 seeded.status().ToString().c_str());
    return;
  }

  lsd::ServerSession alice(1, &store);
  lsd::ServerSession bob(2, &store);
  const char* probe = "probe (STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)";

  RunSession(alice, "alice", "hypo retract (MOVIE-NIGHT, COSTS, FREE)");
  RunSession(alice, "alice", probe);  // only the CHEAP selection
  RunSession(bob, "bob", probe);      // the paper's full two-entry menu
  RunSession(alice, "alice", "hypo clear");
  RunSession(alice, "alice", probe);  // restored
}

}  // namespace

int main() {
  lsd::LooseDb db;
  lsd::workload::BuildCampusDomain(&db);

  // Sec 5.2: the paper's menu — two successes.
  RunProbe(db, "(STUDENT, LOVE, ?Z) and (?Z, COSTS, FREE)");

  // Sec 5.1: which quarterbacks graduated from USC?
  RunProbe(db, "(?Z, IN, QUARTERBACK) and (?Z, GRADUATE-OF, USC)");

  // A query that simply succeeds needs no retraction.
  RunProbe(db, "(FRESHMAN, LOVE, ?Z)");

  // A misspelled relationship is diagnosed.
  RunProbe(db, "(BOB, ATENDED, ?X)");

  // The same probe, served: two clients with independent hypotheses.
  TwoClientProbing();
  return 0;
}
