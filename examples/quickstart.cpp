// Quickstart: the LooseDb public API in ~60 lines.
//
//   $ ./quickstart
//
// Builds a tiny loosely structured database, runs a standard query, a
// navigation step and a probe, and checks integrity.
#include <cstdio>

#include "core/loose_db.h"
#include "query/table_formatter.h"

int main() {
  lsd::LooseDb db;

  // A database is just a heap of facts — no schema to design first.
  db.Assert("JOHN", "IN", "EMPLOYEE");
  db.Assert("EMPLOYEE", "ISA", "PERSON");
  db.Assert("EMPLOYEE", "EARNS", "SALARY");
  db.Assert("JOHN", "WORKS-FOR", "SHIPPING");
  db.Assert("SHIPPING", "IN", "DEPARTMENT");
  db.Assert("JOHN", "EARNS", "$25000");

  // Standard query language (predicate logic over templates).
  auto result = db.Query("(JOHN, ?R, ?X)");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("All facts about JOHN (including inferred ones):\n%s\n",
              lsd::FormatResult(*result, db.entities()).c_str());

  // Browsing by navigation: the neighborhood of an entity.
  auto hood = db.Navigate("JOHN");
  if (hood.ok()) {
    std::printf("%s\n", hood->Render(db.entities()).c_str());
  }

  // Browsing by probing: failed queries retract automatically. Nobody
  // MANAGES shipping, but MANAGES ≺ WORKS-FOR rescues the query.
  db.Assert("MANAGES", "ISA", "WORKS-FOR");
  auto probe = db.Probe("(JOHN, MANAGES, SHIPPING)");
  if (probe.ok()) {
    std::printf("%s\n", probe->Menu(db.entities()).c_str());
  }

  // Integrity: contradiction-free closures are the definition of a
  // valid loosely structured database.
  lsd::Status integrity = db.CheckIntegrity();
  std::printf("integrity: %s\n", integrity.ToString().c_str());
  return integrity.ok() ? 0 : 1;
}
